package shard

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/codes"
	"repro/internal/core"
)

// TestCodeMatrixRoundTrip drives the full shard path for every
// registered code over a spread of (k, p) shapes from the registry:
// streaming encode, clean decode, degraded decode with as many shards
// gone as the code has parities (two for the RAID-6 families, three for
// rs3), repair, then silent corruption — which engages the correction rung for
// core.ColumnCorrector codes and the skip-rung → erasure fallback for
// the rest. Output must be byte-identical to the input at every step.
func TestCodeMatrixRoundTrip(t *testing.T) {
	for _, info := range codes.All() {
		shapes := info.TestShapes
		if len(shapes) > 2 {
			// The full parameter spread is covered by the codetest
			// conformance matrix; here two shapes per family exercise the
			// I/O path without multiplying the test's disk traffic.
			shapes = []codes.Shape{shapes[0], shapes[len(shapes)-1]}
		}
		for _, sh := range shapes {
			t.Run(fmt.Sprintf("%s/k=%d,p=%d", info.Name, sh.K, sh.P), func(t *testing.T) {
				const elem = 32
				code, err := codes.New(info.Name, sh.K, sh.P)
				if err != nil {
					t.Fatal(err)
				}
				dir := t.TempDir()
				size := int64(sh.K*code.W()*elem*3 + 17) // 3 stripes + a partial tail
				content := make([]byte, size)
				rand.New(rand.NewSource(size)).Read(content)
				m, err := EncodeOpts(bytes.NewReader(content), size, "blob.bin",
					sh.K, sh.P, elem, dir, Options{Code: info.Name})
				if err != nil {
					t.Fatalf("EncodeOpts: %v", err)
				}
				if m.Version != FormatVersion || m.Code != info.Name || m.W != code.W() {
					t.Fatalf("manifest records version=%d code=%q w=%d, want %d %q %d",
						m.Version, m.Code, m.W, FormatVersion, info.Name, code.W())
				}
				manifest := filepath.Join(dir, ManifestName(m.FileName))

				decodeAndCompare(t, dir, m, content) // clean path

				// Degraded: the full parity budget gone at once — a data
				// shard plus the last parity (the hard erasure case for the
				// RAID-6 families), padded with more data shards up to M
				// losses so an m=3 family proves its triple-fault claim on
				// the real shard path.
				lost := []int{1, m.NumShards() - 1}
				for i := 2; len(lost) < m.M; i++ {
					lost = append(lost, i)
				}
				for _, i := range lost {
					if err := os.Remove(filepath.Join(dir, m.ShardName(i))); err != nil {
						t.Fatal(err)
					}
				}
				decodeAndCompare(t, dir, m, content)
				if repaired, err := Repair(manifest); err != nil || len(repaired) != m.M {
					t.Fatalf("Repair after %d-shard loss: %v, %v", m.M, repaired, err)
				}

				// Silent corruption: flip a byte mid-shard. The probe
				// quarantines the shard by CRC; ColumnCorrector codes heal
				// it in stream, the rest fall through to erasure decode.
				path := filepath.Join(dir, m.ShardName(0))
				b, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				b[len(b)/2] ^= 0x40
				if err := os.WriteFile(path, b, 0o644); err != nil {
					t.Fatal(err)
				}
				status := decodeAndCompare(t, dir, m, content)
				if status[0].Valid {
					t.Error("corrupt shard reported valid")
				}
				if _, err := Repair(manifest); err != nil {
					t.Fatalf("Repair after corruption: %v", err)
				}
				if err := Verify(manifest, Options{}); err != nil {
					t.Fatalf("Verify after repair: %v", err)
				}
				_, healer := code.(core.ColumnCorrector)
				t.Logf("%s: ok (column correction: %v)", info.Name, healer)
			})
		}
	}
}

// TestManifestV1Fixture loads the committed pre-registry shard set (the
// version 1 layout written before the manifest named its code): it must
// parse with the liberation defaults filled in, decode byte-identically,
// and survive a loss + repair cycle.
func TestManifestV1Fixture(t *testing.T) {
	const fixture = "testdata/v1"
	want, err := os.ReadFile(filepath.Join(fixture, "blob.bin"))
	if err != nil {
		t.Fatal(err)
	}

	m, err := LoadManifest(filepath.Join(fixture, ManifestName("blob.bin")))
	if err != nil {
		t.Fatalf("LoadManifest(v1): %v", err)
	}
	if m.Version != 1 || m.Code != "liberation" || m.W != m.P {
		t.Fatalf("v1 manifest loaded as version=%d code=%q w=%d p=%d",
			m.Version, m.Code, m.W, m.P)
	}

	// Repair mutates the shard set, so run the whole cycle on a copy.
	dir := t.TempDir()
	entries, err := os.ReadDir(fixture)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(fixture, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	decodeAndCompare(t, dir, m, want)

	manifest := filepath.Join(dir, ManifestName(m.FileName))
	if err := os.Remove(filepath.Join(dir, m.ShardName(2))); err != nil {
		t.Fatal(err)
	}
	decodeAndCompare(t, dir, m, want)
	if repaired, err := Repair(manifest); err != nil || len(repaired) != 1 {
		t.Fatalf("Repair(v1): %v, %v", repaired, err)
	}
	if err := Verify(manifest, Options{}); err != nil {
		t.Fatalf("Verify(v1) after repair: %v", err)
	}
}

// TestManifestV2UnknownCode: a version 2 manifest naming a code nobody
// registered must fail the manifest gate — with the registered names in
// the message — before any shard I/O happens.
func TestManifestV2UnknownCode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	body := `{"version":2,"code":"tornado","k":3,"p":5,"w":5,"elem_size":32,` +
		`"file_name":"x","file_size":1,"stripes":1,"checksums":[0,0,0,0,0]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadManifest(path)
	if !errors.Is(err, ErrManifest) {
		t.Fatalf("unknown code error = %v, want ErrManifest", err)
	}
	if !strings.Contains(err.Error(), `"tornado"`) || !strings.Contains(err.Error(), "liberation") {
		t.Errorf("error does not name the code and the registered list: %v", err)
	}

	// A v2 manifest without the strip width is equally malformed.
	noW := `{"version":2,"code":"liberation","k":3,"p":5,"elem_size":32,` +
		`"file_name":"x","file_size":1,"stripes":1,"checksums":[0,0,0,0,0]}`
	if err := os.WriteFile(path, []byte(noW), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); !errors.Is(err, ErrManifest) {
		t.Fatalf("missing width error = %v, want ErrManifest", err)
	}

	// A v2 manifest whose width contradicts the named code must fail the
	// geometry cross-check even though the name resolves.
	badW := `{"version":2,"code":"liberation","k":3,"p":5,"w":4,"elem_size":32,` +
		`"file_name":"x","file_size":1,"stripes":1,"checksums":[0,0,0,0,0]}`
	if err := os.WriteFile(path, []byte(badW), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadManifest(path)
	if err != nil {
		t.Fatalf("LoadManifest(lying width): %v", err)
	}
	if _, err := manifestCode(m, nil); !errors.Is(err, ErrManifest) {
		t.Fatalf("geometry cross-check error = %v, want ErrManifest", err)
	}
}
