package shard

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/store"
	"repro/internal/store/faultstore"
)

// TestStreamingGolden pins the streaming Decode/Repair against the
// original content for a matrix of code shapes, erasure pairs, and
// awkward sizes: every recovered byte and every repaired shard file
// must match what the encode produced.
func TestStreamingGolden(t *testing.T) {
	sizes := []int64{0, 1, 3*4*32 - 1, 3 * 4 * 32, 5*5*32*2 + 17}
	for _, k := range []int{3, 5, 7} {
		for _, size := range sizes {
			t.Run(fmt.Sprintf("k=%d/size=%d", k, size), func(t *testing.T) {
				dir, content, m := encodeTestFile(t, size, k, 0, 32)
				// Save every shard's original bytes so repairs can be
				// compared byte-for-byte, not just by checksum.
				golden := make([][]byte, m.K+2)
				for i := range golden {
					b, err := os.ReadFile(filepath.Join(dir, m.ShardName(i)))
					if err != nil {
						t.Fatal(err)
					}
					golden[i] = b
				}
				manifest := filepath.Join(dir, ManifestName(m.FileName))
				for a := 0; a < m.K+2; a++ {
					for b := a + 1; b < m.K+2; b++ {
						for _, e := range []int{a, b} {
							if err := os.Remove(filepath.Join(dir, m.ShardName(e))); err != nil {
								t.Fatal(err)
							}
						}
						var out bytes.Buffer
						if _, err := Decode(manifest, &out); err != nil {
							t.Fatalf("Decode erasures (%d,%d): %v", a, b, err)
						}
						if !bytes.Equal(out.Bytes(), content) {
							t.Fatalf("decode erasures (%d,%d): output differs from original", a, b)
						}
						repaired, err := Repair(manifest)
						if err != nil {
							t.Fatalf("Repair erasures (%d,%d): %v", a, b, err)
						}
						if len(repaired) != 2 {
							t.Fatalf("Repair erasures (%d,%d): repaired %v, want 2 shards", a, b, repaired)
						}
						for _, e := range []int{a, b} {
							got, err := os.ReadFile(filepath.Join(dir, m.ShardName(e)))
							if err != nil {
								t.Fatal(err)
							}
							if !bytes.Equal(got, golden[e]) {
								t.Fatalf("repaired shard %d differs from its original bytes", e)
							}
						}
					}
				}
			})
		}
	}
}

// TestStreamingOptionsMatchDefaults checks that worker and batch knobs
// change only performance, never bytes: every Options combination must
// produce shard files and decode output identical to the zero-value
// path.
func TestStreamingOptionsMatchDefaults(t *testing.T) {
	const size = 4*5*64*7 + 333
	content := make([]byte, size)
	rand.New(rand.NewSource(99)).Read(content)

	baseDir := t.TempDir()
	base, err := Encode(bytes.NewReader(content), size, "blob.bin", 4, 0, 64, baseDir)
	if err != nil {
		t.Fatal(err)
	}
	baseShards := make([][]byte, base.K+2)
	for i := range baseShards {
		b, err := os.ReadFile(filepath.Join(baseDir, base.ShardName(i)))
		if err != nil {
			t.Fatal(err)
		}
		baseShards[i] = b
	}

	for _, opt := range []Options{
		{Workers: 4},
		{BatchStripes: 1},
		{BatchStripes: 3},
		{Workers: 4, BatchStripes: 2},
		{Workers: -1, BatchStripes: 1000},
	} {
		name := fmt.Sprintf("workers=%d/batch=%d", opt.Workers, opt.BatchStripes)
		dir := t.TempDir()
		m, err := EncodeOpts(bytes.NewReader(content), size, "blob.bin", 4, 0, 64, dir, opt)
		if err != nil {
			t.Fatalf("%s: EncodeOpts: %v", name, err)
		}
		for i := range baseShards {
			got, err := os.ReadFile(filepath.Join(dir, m.ShardName(i)))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, baseShards[i]) {
				t.Fatalf("%s: shard %d differs from the default-path shard", name, i)
			}
		}
		if err := os.Remove(filepath.Join(dir, m.ShardName(1))); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if _, err := DecodeOpts(filepath.Join(dir, ManifestName(m.FileName)), &out, opt); err != nil {
			t.Fatalf("%s: DecodeOpts: %v", name, err)
		}
		if !bytes.Equal(out.Bytes(), content) {
			t.Fatalf("%s: decode output differs from original", name)
		}
	}
}

// crcWriter consumes a decode stream without retaining it, so the
// bounded-memory test measures the pipeline's allocations, not the
// output buffer's.
type crcWriter struct {
	sum uint32
	n   int64
}

func (w *crcWriter) Write(p []byte) (int, error) {
	w.sum = crc32.Update(w.sum, crc32.IEEETable, p)
	w.n += int64(len(p))
	return len(p), nil
}

// TestDecodeBoundedMemory proves the O(batch × stripe) claim: decoding a
// 64 MiB file with one shard erased must allocate far less than the file
// size. The stripe pool is primed by a first decode so the measured pass
// shows steady-state behaviour.
func TestDecodeBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("64 MiB file")
	}
	const size = 64 << 20
	const k, elem = 4, 4096
	dir := t.TempDir()
	content := make([]byte, size)
	rand.New(rand.NewSource(7)).Read(content)
	wantCRC := crc32.ChecksumIEEE(content)
	m, err := Encode(bytes.NewReader(content), size, "big.bin", k, 0, elem, dir)
	if err != nil {
		t.Fatal(err)
	}
	content = nil
	if err := os.Remove(filepath.Join(dir, m.ShardName(2))); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, ManifestName(m.FileName))

	decodeOnce := func() *crcWriter {
		w := &crcWriter{}
		if _, err := Decode(manifest, w); err != nil {
			t.Fatal(err)
		}
		return w
	}
	decodeOnce() // warm the stripe pool and file cache

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	w := decodeOnce()
	runtime.ReadMemStats(&after)

	if w.n != size || w.sum != wantCRC {
		t.Fatalf("decoded %d bytes crc %08x, want %d bytes crc %08x", w.n, w.sum, size, wantCRC)
	}
	alloc := after.TotalAlloc - before.TotalAlloc
	// Budget: a few batches of stripes (DefaultBatchStripes × stripe ≈
	// 6 MiB here) plus buffered I/O — far below the 64 MiB file.
	const budget = 24 << 20
	if alloc > budget {
		t.Fatalf("decode of %d MiB allocated %d MiB, want < %d MiB (not O(file))",
			size>>20, alloc>>20, budget>>20)
	}
	t.Logf("decode of %d MiB allocated %.1f MiB", size>>20, float64(alloc)/(1<<20))
}

// failingReader errors after a fixed number of bytes, mid-stream.
type failingReader struct {
	r    io.Reader
	left int64
}

var errInjected = errors.New("injected read failure")

func (f *failingReader) Read(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, errInjected
	}
	if int64(len(p)) > f.left {
		p = p[:f.left]
	}
	n, err := f.r.Read(p)
	f.left -= int64(n)
	return n, err
}

// TestEncodeCleansUpOnError checks the tentpole's failure contract: an
// encode that dies mid-stream (reader error, both serial and parallel)
// must remove every shard file it created and write no manifest.
func TestEncodeCleansUpOnError(t *testing.T) {
	const size = 4 * 5 * 64 * 50 // 50 stripes, fails partway
	content := make([]byte, size)
	rand.New(rand.NewSource(5)).Read(content)
	for _, opt := range []Options{{}, {Workers: 4, BatchStripes: 2}} {
		dir := t.TempDir()
		r := &failingReader{r: bytes.NewReader(content), left: size / 3}
		_, err := EncodeOpts(r, size, "blob.bin", 4, 0, 64, dir, opt)
		if !errors.Is(err, errInjected) {
			t.Fatalf("workers=%d: err = %v, want injected read failure", opt.Workers, err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			t.Errorf("workers=%d: leftover file %q after failed encode", opt.Workers, e.Name())
		}
	}
}

// TestEncodeShortReaderFails pins the size reconciliation: a reader that
// runs dry before the declared size is an error, and still cleans up.
func TestEncodeShortReaderFails(t *testing.T) {
	dir := t.TempDir()
	content := make([]byte, 1000)
	_, err := Encode(bytes.NewReader(content), 5000, "blob.bin", 4, 0, 64, dir)
	if err == nil {
		t.Fatal("Encode with short reader succeeded, want error")
	}
	entries, readErr := os.ReadDir(dir)
	if readErr != nil {
		t.Fatal(readErr)
	}
	for _, e := range entries {
		t.Errorf("leftover file %q after short-read encode", e.Name())
	}
}

// TestDecodeDetectsMidStreamCorruption checks the rolling-CRC defense:
// a shard whose content lies between the probe and the streaming read
// (here: a read-path bit-flip injected after the probe's checksum pass)
// must not silently feed stale bytes into the output — the self-healing
// decode quarantines it and restarts without it.
func TestDecodeDetectsMidStreamCorruption(t *testing.T) {
	dir, content, m := encodeTestFile(t, 4*5*64*8, 4, 0, 64)

	// Shard d01 is smaller than one probe buffer, so the probe costs
	// exactly one read; After:1 makes the single bit-flip land on the
	// streaming read instead.
	faulty := faultstore.New(store.OS{}, faultstore.Config{Seed: 7, Rules: []faultstore.Rule{
		{Path: m.ShardName(1), Op: faultstore.OpRead, Kind: faultstore.BitFlip, Prob: 1, Count: 1, After: 1},
	}})
	out, err := os.Create(filepath.Join(t.TempDir(), "out"))
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	rep, err := DecodeReport(filepath.Join(dir, ManifestName(m.FileName)), out,
		Options{Store: faulty})
	if err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	if rep.Attempts < 2 {
		t.Errorf("attempts = %d, want a quarantine restart", rep.Attempts)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != 1 {
		t.Errorf("quarantined = %v, want [1]", rep.Quarantined)
	}
	got, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("self-healed decode differs from the original")
	}
}
