package shard

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Decode reconstructs the original file from the shard set described by
// the manifest at manifestPath (shards are looked up in the same
// directory) and writes it to w. Missing or checksum-corrupt shards are
// treated as erasures; up to two are tolerated. It returns the per-shard
// status that recovery observed.
func Decode(manifestPath string, w io.Writer) ([]ShardStatus, error) {
	return DecodeOpts(manifestPath, w, Options{})
}

// DecodeObserved is Decode with a metrics registry attached (see
// EncodeObserved); recovery work shows up as liberation.decode spans
// under a shard.decode span, with the health probe as shard.probe.
func DecodeObserved(manifestPath string, w io.Writer, reg *obs.Registry) ([]ShardStatus, error) {
	return DecodeOpts(manifestPath, w, Options{Registry: reg})
}

// DecodeOpts is the streaming decoder behind Decode.
//
// The erasure decision is made up front by a cheap probe (stat for
// presence and size, then a streamed CRC-32 pass in O(1) memory); the
// surviving shards are then read stripe-by-stripe through per-shard
// readers, reconstructed batch-at-a-time (over a worker pool when
// opt.Workers > 1), and written straight to w. Rolling CRCs re-verify
// every surviving shard while it streams, so a shard that changes
// between the probe and the read is detected rather than silently
// decoded into the output. Peak memory is O(BatchStripes × stripe)
// regardless of file size.
func DecodeOpts(manifestPath string, w io.Writer, opt Options) (_ []ShardStatus, err error) {
	m, err := LoadManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	reg := opt.Registry
	code, err := newCode(m.K, m.P, reg)
	if err != nil {
		return nil, err
	}
	sp := obs.StartSpan(reg, "shard.decode")
	defer func() { sp.Bytes(int(m.FileSize)).End(err) }()

	dir := filepath.Dir(manifestPath)
	files, status, erased, err := probeShards(m, dir, reg)
	if err != nil {
		return status, err
	}
	defer func() {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}()

	stripBytes, _ := m.shardShape()
	readers := newShardReaders(files)
	rolling := make([]uint32, m.K+2)

	stripes := streamBatch(opt, m, code)
	defer releaseStripes(stripes)

	remaining := m.FileSize
	for done := 0; done < m.Stripes; {
		n := len(stripes)
		if rem := m.Stripes - done; n > rem {
			n = rem
		}
		if err = fillBatch(readers, stripes[:n], rolling); err != nil {
			return status, err
		}
		if len(erased) > 0 {
			if err = decodeBatch(code, stripes[:n], erased, opt); err != nil {
				return status, err
			}
		}
		for j := 0; j < n; j++ {
			for t := 0; t < m.K && remaining > 0; t++ {
				out := int64(stripBytes)
				if out > remaining {
					out = remaining
				}
				if _, err = w.Write(stripes[j].Strips[t][:out]); err != nil {
					return status, err
				}
				remaining -= out
			}
		}
		done += n
	}
	if remaining != 0 {
		err = fmt.Errorf("shard: %d bytes unaccounted for", remaining)
		return status, err
	}
	if err = verifyRolling(m, files, rolling); err != nil {
		return status, err
	}
	return status, nil
}

// Repair reconstructs missing/corrupt shards in place (writing repaired
// shard files back into the manifest's directory) and returns the indices
// repaired.
func Repair(manifestPath string) ([]int, error) {
	return RepairOpts(manifestPath, Options{})
}

// RepairObserved is Repair with a metrics registry attached (see
// EncodeObserved).
func RepairObserved(manifestPath string, reg *obs.Registry) ([]int, error) {
	return RepairOpts(manifestPath, Options{Registry: reg})
}

// RepairOpts is the streaming repairer behind Repair. It shares the
// probe and the bounded-memory stripe loop with DecodeOpts, but routes
// the reconstructed strips into fresh shard files written next to the
// originals: each repaired shard streams into a temporary file whose
// rolling CRC must reproduce the manifest checksum before it is renamed
// over the broken shard, so a failed repair never clobbers anything.
func RepairOpts(manifestPath string, opt Options) (_ []int, err error) {
	m, err := LoadManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	reg := opt.Registry
	code, err := newCode(m.K, m.P, reg)
	if err != nil {
		return nil, err
	}
	sp := obs.StartSpan(reg, "shard.repair")
	defer func() { sp.Bytes(int(m.FileSize)).End(err) }()

	dir := filepath.Dir(manifestPath)
	files, _, erased, err := probeShards(m, dir, reg)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}()
	if len(erased) == 0 {
		return nil, nil
	}

	// Repaired shards stream into temp files, verified before rename.
	tmpFiles := make(map[int]*os.File, len(erased))
	tmpWriters := make(map[int]*bufio.Writer, len(erased))
	var tmpPaths []string
	defer func() {
		for _, f := range tmpFiles {
			if f != nil {
				f.Close()
			}
		}
		if err != nil {
			for _, p := range tmpPaths {
				os.Remove(p)
			}
		}
	}()
	for _, e := range erased {
		path := filepath.Join(dir, m.ShardName(e)+".repair")
		f, createErr := os.Create(path)
		if createErr != nil {
			err = createErr
			return nil, err
		}
		tmpPaths = append(tmpPaths, path)
		tmpFiles[e] = f
		tmpWriters[e] = bufio.NewWriterSize(f, 256<<10)
	}

	readers := newShardReaders(files)
	rolling := make([]uint32, m.K+2)
	stripes := streamBatch(opt, m, code)
	defer releaseStripes(stripes)

	for done := 0; done < m.Stripes; {
		n := len(stripes)
		if rem := m.Stripes - done; n > rem {
			n = rem
		}
		if err = fillBatch(readers, stripes[:n], rolling); err != nil {
			return nil, err
		}
		if err = decodeBatch(code, stripes[:n], erased, opt); err != nil {
			return nil, err
		}
		for j := 0; j < n; j++ {
			for _, e := range erased {
				strip := stripes[j].Strips[e]
				if _, err = tmpWriters[e].Write(strip); err != nil {
					return nil, err
				}
				rolling[e] = crc32.Update(rolling[e], crc32.IEEETable, strip)
			}
		}
		done += n
	}
	if err = verifyRolling(m, files, rolling); err != nil {
		return nil, err
	}
	for _, e := range erased {
		if rolling[e] != m.Checksums[e] {
			err = fmt.Errorf("shard: repaired shard %d fails its checksum", e)
			return nil, err
		}
	}
	for _, e := range erased {
		if err = tmpWriters[e].Flush(); err != nil {
			return nil, err
		}
		if err = tmpFiles[e].Close(); err != nil {
			tmpFiles[e] = nil
			return nil, err
		}
		tmpFiles[e] = nil
		if err = os.Rename(filepath.Join(dir, m.ShardName(e)+".repair"),
			filepath.Join(dir, m.ShardName(e))); err != nil {
			return nil, err
		}
	}
	return erased, nil
}

// streamBatch sizes the batch for one streaming call and takes its
// stripes from the shared pool.
func streamBatch(opt Options, m *Manifest, code interface{ W() int }) []*core.Stripe {
	n := opt.batch()
	if n > m.Stripes {
		n = m.Stripes
	}
	if n < 1 {
		n = 1
	}
	pool := core.SharedStripePool(m.K, code.W(), m.ElemSize)
	stripes := make([]*core.Stripe, n)
	for i := range stripes {
		stripes[i] = pool.Get()
	}
	return stripes
}

// releaseStripes hands a streaming batch back to the shared pool.
func releaseStripes(stripes []*core.Stripe) {
	for _, s := range stripes {
		if s != nil {
			core.SharedStripePool(s.K, s.W, s.ElemSize).Put(s)
		}
	}
}

// newShardReaders wraps the surviving shard files in buffered readers;
// erased slots stay nil.
func newShardReaders(files []*os.File) []*bufio.Reader {
	readers := make([]*bufio.Reader, len(files))
	for i, f := range files {
		if f != nil {
			readers[i] = bufio.NewReaderSize(f, 128<<10)
		}
	}
	return readers
}

// fillBatch reads the next strip of every surviving shard into each
// stripe of the batch, updating the rolling CRCs. Erased strips are left
// as-is: the decoder rewrites them from scratch.
func fillBatch(readers []*bufio.Reader, stripes []*core.Stripe, rolling []uint32) error {
	for _, s := range stripes {
		for i, br := range readers {
			if br == nil {
				continue
			}
			if _, err := io.ReadFull(br, s.Strips[i]); err != nil {
				return fmt.Errorf("shard: shard %d truncated mid-stream: %w", i, err)
			}
			rolling[i] = crc32.Update(rolling[i], crc32.IEEETable, s.Strips[i])
		}
	}
	return nil
}

// decodeBatch reconstructs the erased strips of every stripe in the
// batch, over a worker pool when the options ask for one.
func decodeBatch(code core.Code, stripes []*core.Stripe, erased []int, opt Options) error {
	if workers := opt.workerCount(); workers > 1 {
		return pipeline.DecodeAll(code, stripes, erased, nil,
			pipeline.Config{Workers: workers, Registry: opt.Registry})
	}
	for _, s := range stripes {
		if err := code.Decode(s, erased, nil); err != nil {
			return err
		}
	}
	return nil
}

// verifyRolling checks the rolling CRCs of every surviving shard against
// the manifest: a mismatch means the shard changed between the up-front
// probe and the streaming read, and whatever was reconstructed from it
// cannot be trusted.
func verifyRolling(m *Manifest, files []*os.File, rolling []uint32) error {
	for i, f := range files {
		if f == nil {
			continue
		}
		if rolling[i] != m.Checksums[i] {
			return fmt.Errorf("shard: shard %d (%s) changed while streaming: checksum %08x, manifest %08x",
				i, m.ShardName(i), rolling[i], m.Checksums[i])
		}
	}
	return nil
}
