package shard

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// Report summarizes one recovery run (decode or repair): the per-shard
// health, which shards were quarantined, how many stripes the
// single-column correction healed, and how many streaming attempts the
// self-healing loop needed.
type Report struct {
	// Status is the final per-shard health (from the last attempt's
	// probe, refined by mid-stream quarantines).
	Status []ShardStatus
	// Quarantined lists shards whose content was distrusted at any
	// point: checksum-corrupt at probe time or failed mid-stream.
	Quarantined []int
	// Corrections is the number of stripes healed by the paper's
	// single-column error correction.
	Corrections uint64
	// Attempts is the number of streaming passes (1 = no restart).
	Attempts int
	// Degraded reports whether recovery ran without full redundancy.
	Degraded bool
}

// Decode reconstructs the original file from the shard set described by
// the manifest at manifestPath (shards are looked up in the same
// directory) and writes it to w. Missing or checksum-corrupt shards are
// treated per the degradation ladder (quarantine → CorrectColumn →
// erasure decode); up to m hard losses are tolerated (m being the
// code's parity count), and purely silent per-stripe single-column
// corruption is healed even beyond that. It returns the per-shard
// status that recovery observed.
func Decode(manifestPath string, w io.Writer) ([]ShardStatus, error) {
	return DecodeOpts(manifestPath, w, Options{})
}

// DecodeObserved is Decode with a metrics registry attached (see
// EncodeObserved); recovery work shows up as liberation.decode spans
// under a shard.decode span, with the health probe as shard.probe.
func DecodeObserved(manifestPath string, w io.Writer, reg *obs.Registry) ([]ShardStatus, error) {
	return DecodeOpts(manifestPath, w, Options{Registry: reg})
}

// DecodeOpts is the streaming decoder behind Decode; see DecodeReport
// for the full result.
func DecodeOpts(manifestPath string, w io.Writer, opt Options) ([]ShardStatus, error) {
	rep, err := DecodeReport(manifestPath, w, opt)
	if rep == nil {
		return nil, err
	}
	return rep.Status, err
}

// DecodeReport is the self-healing streaming decoder.
//
// The up-front probe (stat + streamed CRC-32, O(1) memory) classifies
// every shard: clean, soft-quarantined (present but checksum-corrupt),
// or hard-erased (missing, truncated, unreadable). Recovery then picks a
// rung of the degradation ladder:
//
//   - no hard losses, but quarantined shards (or Options.Heal): stream
//     all k+m columns and run the paper's single-column error correction
//     per stripe, falling back to erasure-decoding the quarantined
//     columns for stripes whose corruption is not single-column;
//   - 1..m unusable shards: classic erasure decode of the survivors;
//   - more: a typed *UnrecoverableError naming every failed shard.
//
// While stripes stream, transient read errors are retried with capped
// exponential backoff (Options.Retry), and rolling CRCs re-verify every
// column end to end — a shard that fails mid-stream is quarantined and
// the decode restarts without it (when w is rewindable, i.e. an
// *os.File). Peak memory is O(BatchStripes × stripe) regardless of file
// size.
func DecodeReport(manifestPath string, w io.Writer, opt Options) (_ *Report, err error) {
	var m *Manifest
	ctx, sp := obs.StartOp(opt.context(), opt.Tracer, opt.Registry, "shard.decode",
		slog.String("manifest", filepath.Base(manifestPath)))
	defer func() {
		if m != nil {
			sp.Bytes(int(m.FileSize))
		}
		sp.End(err)
		stampFlight(ctx, err)
	}()
	st := opt.store(ctx)
	m, err = loadManifest(st, manifestPath)
	if err != nil {
		return nil, err
	}
	code, err := manifestCode(m, opt.Registry)
	if err != nil {
		return nil, err
	}
	countShardOp(opt.Registry, "decode", m.Code)

	r := newRecovery(m, code, opt, st, ctx, filepath.Dir(manifestPath))
	sink := &decodeSink{w: w, m: m}
	err = r.run(sink)
	return r.rep, err
}

// Repair reconstructs missing/corrupt shards in place (writing repaired
// shard files back into the manifest's directory) and returns the indices
// repaired.
func Repair(manifestPath string) ([]int, error) {
	return RepairOpts(manifestPath, Options{})
}

// RepairObserved is Repair with a metrics registry attached (see
// EncodeObserved).
func RepairObserved(manifestPath string, reg *obs.Registry) ([]int, error) {
	return RepairOpts(manifestPath, Options{Registry: reg})
}

// RepairOpts is the streaming repairer behind Repair. It shares the
// probe, the degradation ladder, and the bounded-memory stripe loop with
// DecodeReport, but routes the reconstructed strips into fresh shard
// files written next to the originals: each repaired shard streams into
// a temporary file whose rolling CRC must reproduce the manifest
// checksum before it is synced and renamed over the broken shard, so a
// failed repair never clobbers anything.
func RepairOpts(manifestPath string, opt Options) (_ []int, err error) {
	var m *Manifest
	ctx, sp := obs.StartOp(opt.context(), opt.Tracer, opt.Registry, "shard.repair",
		slog.String("manifest", filepath.Base(manifestPath)))
	defer func() {
		if m != nil {
			sp.Bytes(int(m.FileSize))
		}
		sp.End(err)
		stampFlight(ctx, err)
	}()
	st := opt.store(ctx)
	m, err = loadManifest(st, manifestPath)
	if err != nil {
		return nil, err
	}
	code, err := manifestCode(m, opt.Registry)
	if err != nil {
		return nil, err
	}
	countShardOp(opt.Registry, "repair", m.Code)

	dir := filepath.Dir(manifestPath)
	r := newRecovery(m, code, opt, st, ctx, dir)
	sink := &repairSink{m: m, st: st, dir: dir}
	if err = r.run(sink); err != nil {
		return nil, err
	}
	return sink.repaired, nil
}

// recovery drives the self-healing attempt loop shared by decode and
// repair.
type recovery struct {
	m    *Manifest
	code core.Code
	// corrector is the code's single-column error correction capability,
	// nil when the code does not provide one — the ladder then skips the
	// correction rung and goes straight to erasure decode.
	corrector core.ColumnCorrector
	opt       Options
	reg       *obs.Registry
	st        store.Store
	ctx       context.Context // carries the operation's trace
	dir       string

	rep     *Report
	forced  map[int]error // mid-stream quarantines, by column
	counted map[int]bool  // shard.quarantine.total dedup across attempts
}

// newRecovery wires up the attempt loop, discovering the code's
// correction capability by interface assertion rather than by name.
func newRecovery(m *Manifest, code core.Code, opt Options, st store.Store,
	ctx context.Context, dir string) *recovery {
	r := &recovery{m: m, code: code, opt: opt, reg: opt.Registry, st: st, ctx: ctx, dir: dir}
	r.corrector, _ = code.(core.ColumnCorrector)
	return r
}

// maxAttempts bounds the restart loop defensively; the quarantine budget
// (at most m hard erasures) terminates it much earlier in practice.
func (r *recovery) maxAttempts() int { return r.m.M + 3 }

// run executes probe → ladder → stream attempts until one succeeds, the
// quarantine budget is exhausted, or the error is not a mid-stream
// quarantine.
func (r *recovery) run(sink recoverSink) error {
	r.rep = &Report{}
	r.forced = make(map[int]error)
	r.counted = make(map[int]bool)
	defer sink.abort()
	for {
		r.rep.Attempts++
		actx, asp := obs.StartSpanCtx(r.ctx, r.reg, "shard.attempt",
			slog.Int("attempt", r.rep.Attempts))
		files, status, hard, soft := probeShards(actx, r.m, r.dir, r.st,
			nodeMapperOf(r.opt.Store), r.reg, r.forced)
		r.rep.Status = status
		r.noteQuarantines(actx, status)
		err := r.attempt(actx, files, status, hard, soft, sink)
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
		asp.End(err)
		if err == nil {
			if len(hard)+len(soft) > 0 {
				r.rep.Degraded = true
			}
			return nil
		}
		var q *quarantineError
		if !errors.As(err, &q) {
			if nodeFault(err) && sink.canRestart() && r.rep.Attempts < r.maxAttempts() {
				// A node went dark under the sink mid-stream: the temp a
				// shard was streaming into is unreachable. Restart the
				// attempt — begin recreates the temps and a placement-
				// aware store re-places them onto healthy spare nodes,
				// while the re-probe hard-erases the dead node's shards.
				r.reg.Count("shard.sink.restart.total", 1)
				obs.EmitErr(r.ctx, slog.LevelWarn, "shard.sink.restart", err,
					slog.Int("attempt", r.rep.Attempts))
				continue
			}
			return err
		}
		if r.rep.Attempts >= r.maxAttempts() {
			return &UnrecoverableError{Status: r.rep.Status,
				Reason: fmt.Sprintf("gave up after %d attempts: %v", r.rep.Attempts, q)}
		}
		if _, dup := r.forced[q.col]; dup {
			// The same column failed after already being excluded —
			// nothing left to heal with.
			return &UnrecoverableError{Status: r.rep.Status,
				Reason: fmt.Sprintf("shard %d failed repeatedly: %v", q.col, q.cause)}
		}
		r.forced[q.col] = q.cause
		obs.EmitErr(r.ctx, slog.LevelWarn, "shard.quarantine.midstream", q.cause,
			slog.Int("shard", q.col), slog.String("name", r.m.ShardName(q.col)),
			slog.Int("attempt", r.rep.Attempts))
	}
}

// noteQuarantines bills shard.quarantine.total once per shard across all
// attempts, records the report's quarantine list, and emits a
// shard.quarantine event per newly distrusted shard into the attempt's
// trace.
func (r *recovery) noteQuarantines(ctx context.Context, status []ShardStatus) {
	for _, st := range status {
		if st.State != StateCorrupt && st.State != StateQuarantined {
			continue
		}
		if r.counted[st.Index] {
			continue
		}
		r.counted[st.Index] = true
		r.rep.Quarantined = append(r.rep.Quarantined, st.Index)
		r.reg.Count("shard.quarantine.total", 1)
		obs.EmitErr(ctx, slog.LevelWarn, "shard.quarantine", st.Err,
			slog.Int("shard", st.Index), slog.String("name", st.Name),
			slog.String("state", st.State.String()))
	}
	sort.Ints(r.rep.Quarantined)
}

// attempt runs one rung of the degradation ladder over one streaming
// pass, recording which rung was chosen as a shard.rung event in the
// attempt's trace.
func (r *recovery) attempt(ctx context.Context, files []store.File, status []ShardStatus, hard, soft []int, sink recoverSink) error {
	if len(hard) > r.m.M {
		return &UnrecoverableError{Status: status,
			Reason: fmt.Sprintf("%d shards beyond repair, can tolerate %d", len(hard), r.m.M)}
	}
	if len(hard) == 0 && (len(soft) > 0 || r.opt.Heal) {
		// Correction-first — except that a sink that cannot rewind (a
		// plain io.Writer) must not gamble on a rung that may need a
		// quarantine restart when the plain erasure rung would do.
		if r.opt.Heal || len(soft) > r.m.M || sink.canRestart() {
			if r.corrector == nil {
				// The code cannot localize silent corruption: record why
				// the heal rung was skipped and drop to erasure decode.
				r.reg.Count("shard.rung.skip.total", 1)
				obs.Emit(ctx, slog.LevelInfo, "shard.rung.skip",
					slog.String("rung", "correction"),
					slog.String("reason", "code lacks column correction"),
					slog.String("code", r.code.Name()),
					slog.Int("suspects", len(soft)))
			} else {
				obs.Emit(ctx, slog.LevelInfo, "shard.rung",
					slog.String("rung", "correction"), slog.Int("suspects", len(soft)))
				return r.correctionStream(ctx, files, soft, sink)
			}
		}
	}
	erased := make([]int, 0, len(hard)+len(soft))
	erased = append(erased, hard...)
	erased = append(erased, soft...)
	sort.Ints(erased)
	if len(erased) > r.m.M {
		return &UnrecoverableError{Status: status,
			Reason: fmt.Sprintf("%d shards unusable, can tolerate %d", len(erased), r.m.M)}
	}
	obs.Emit(ctx, slog.LevelInfo, "shard.rung",
		slog.String("rung", "erasure"), slog.Int("erased", len(erased)))
	return r.erasureStream(ctx, files, erased, sink)
}

// erasureStream is the classic decode rung: the erased columns are
// reconstructed from the survivors, batch by batch, with rolling CRCs
// re-verifying every column (streamed and reconstructed) against the
// manifest at the end.
func (r *recovery) erasureStream(ctx context.Context, files []store.File, erased []int, sink recoverSink) error {
	if err := sink.begin(erased); err != nil {
		return err
	}
	m := r.m
	skip := make(map[int]bool, len(erased))
	for _, e := range erased {
		skip[e] = true
	}
	readers := newShardReaders(m, files, skip)
	rolling := make([]uint32, m.NumShards())
	stripes := streamBatch(r.opt, m, r.code)
	defer releaseStripes(stripes)

	for done := 0; done < m.Stripes; {
		n := len(stripes)
		if rem := m.Stripes - done; n > rem {
			n = rem
		}
		if col, err := fillBatch(readers, stripes[:n], rolling); err != nil {
			return &quarantineError{col: col, cause: err}
		}
		if len(erased) > 0 {
			if err := decodeBatch(ctx, r.code, stripes[:n], erased, r.opt); err != nil {
				return err
			}
			for j := 0; j < n; j++ {
				for _, e := range erased {
					rolling[e] = crc32.Update(rolling[e], crc32.IEEETable, stripes[j].Strips[e])
				}
			}
		}
		if err := sink.consume(stripes[:n]); err != nil {
			return err
		}
		done += n
	}
	// Streamed columns first: a mismatch there means the shard changed
	// (or lied) while streaming and is grounds for quarantine + restart.
	for i, sum := range rolling {
		if !skip[i] && sum != m.Checksums[i] {
			return &quarantineError{col: i, cause: fmt.Errorf(
				"shard %d (%s) changed while streaming: checksum %08x, manifest %08x",
				i, m.ShardName(i), sum, m.Checksums[i])}
		}
	}
	// Reconstructed columns second: with all inputs verified, a mismatch
	// here cannot be pinned on any shard.
	for _, e := range erased {
		if rolling[e] != m.Checksums[e] {
			return &UnrecoverableError{Status: r.rep.Status, Reason: fmt.Sprintf(
				"reconstructed shard %d fails its manifest checksum", e)}
		}
	}
	return sink.finish()
}

// correctionStream is the silent-corruption rung: all k+m columns stream
// (including soft-quarantined ones) and every stripe is checked — and
// healed — with the paper's single-column error correction. Stripes
// whose corruption is not confined to one column fall back to erasure-
// decoding the quarantined columns; rolling CRCs of the corrected
// columns must reproduce the manifest checksums at the end.
func (r *recovery) correctionStream(ctx context.Context, files []store.File, soft []int, sink recoverSink) error {
	if err := sink.begin(soft); err != nil {
		return err
	}
	m := r.m
	readers := newShardReaders(m, files, nil)
	rolling := make([]uint32, m.NumShards())
	stripes := streamBatch(r.opt, m, r.code)
	defer releaseStripes(stripes)

	for done := 0; done < m.Stripes; {
		n := len(stripes)
		if rem := m.Stripes - done; n > rem {
			n = rem
		}
		if col, err := fillBatch(readers, stripes[:n], nil); err != nil {
			return &quarantineError{col: col, cause: err}
		}
		for j := 0; j < n; j++ {
			var cops core.Ops
			col, cerr := r.corrector.CorrectColumn(stripes[j], &cops)
			r.reg.Count("shard.correct_column.xors", cops.XORs)
			switch {
			case cerr == nil && col != core.CleanColumn:
				r.rep.Corrections++
				r.reg.Count("shard.correct_column.total", 1)
				obs.Emit(ctx, slog.LevelInfo, "shard.correct_column",
					slog.Int("stripe", done+j), slog.Int("col", col))
			case cerr != nil:
				r.reg.Count("shard.correct_column.failed", 1)
				obs.EmitErr(ctx, slog.LevelWarn, "shard.correct_column.fallback", cerr,
					slog.Int("stripe", done+j), slog.Int("suspects", len(soft)))
				switch {
				case len(soft) >= 1 && len(soft) <= r.m.M:
					// Not single-column, but we know which columns are
					// suspect: erasure-decode them for this stripe.
					if derr := r.code.Decode(stripes[j], soft, nil); derr != nil {
						return derr
					}
				case len(soft) == 0:
					// Healing scan with no suspects: leave the stripe
					// as read and let the end-of-stream rolling CRCs
					// quarantine whichever column misbehaved.
				default:
					return &UnrecoverableError{Status: r.rep.Status, Reason: fmt.Sprintf(
						"stripe %d: corruption spans multiple columns and %d shards are quarantined",
						done+j, len(soft))}
				}
			}
			for i := 0; i < m.NumShards(); i++ {
				rolling[i] = crc32.Update(rolling[i], crc32.IEEETable, stripes[j].Strips[i])
			}
		}
		if err := sink.consume(stripes[:n]); err != nil {
			return err
		}
		done += n
	}
	// Post-correction columns must reproduce the manifest exactly; a
	// mismatch means the column misbehaved in a way correction could not
	// pin down — quarantine it and retry on the erasure rung.
	for i, sum := range rolling {
		if sum != m.Checksums[i] {
			return &quarantineError{col: i, cause: fmt.Errorf(
				"shard %d (%s) still corrupt after correction: checksum %08x, manifest %08x",
				i, m.ShardName(i), sum, m.Checksums[i])}
		}
	}
	return sink.finish()
}

// recoverSink receives the recovered stripes of one attempt. begin is
// called at the start of every attempt (a restart must rewind), consume
// after each batch is decoded/corrected, finish on success, and abort
// exactly once when the recovery ends (success or not).
type recoverSink interface {
	begin(targets []int) error
	consume(stripes []*core.Stripe) error
	finish() error
	abort()
	// canRestart reports whether a later begin can undo consumed output.
	canRestart() bool
}

// decodeSink streams the data strips to the caller's writer, truncating
// to the original file size. Restarts rewind the writer when it supports
// Seek+Truncate (*os.File does); otherwise the restart is refused and
// the decode fails with the quarantine cause.
type decodeSink struct {
	w         io.Writer
	m         *Manifest
	remaining int64
	attempts  int
}

// rewindableWriter is what a decode destination must implement to
// support mid-stream quarantine restarts.
type rewindableWriter interface {
	io.WriteSeeker
	Truncate(int64) error
}

func (s *decodeSink) begin([]int) error {
	s.attempts++
	if s.attempts > 1 {
		rw, ok := s.w.(rewindableWriter)
		if !ok {
			return fmt.Errorf("shard: mid-stream quarantine needs a rewindable output (got %T)", s.w)
		}
		if _, err := rw.Seek(0, io.SeekStart); err != nil {
			return err
		}
		if err := rw.Truncate(0); err != nil {
			return err
		}
	}
	s.remaining = s.m.FileSize
	return nil
}

func (s *decodeSink) consume(stripes []*core.Stripe) error {
	stripBytes, _ := s.m.shardShape()
	for _, stripe := range stripes {
		for t := 0; t < s.m.K && s.remaining > 0; t++ {
			out := int64(stripBytes)
			if out > s.remaining {
				out = s.remaining
			}
			if _, err := s.w.Write(stripe.Strips[t][:out]); err != nil {
				return err
			}
			s.remaining -= out
		}
	}
	return nil
}

func (s *decodeSink) finish() error {
	if s.remaining != 0 {
		return fmt.Errorf("shard: %d bytes unaccounted for", s.remaining)
	}
	return nil
}

func (s *decodeSink) abort() {}

func (s *decodeSink) canRestart() bool {
	_, ok := s.w.(rewindableWriter)
	return ok
}

// repairSink streams each target column into a temporary file; finish
// verifies, syncs, and renames them over the broken shards, so a failed
// repair never clobbers anything. Restarts recreate the temp files.
type repairSink struct {
	m   *Manifest
	st  store.Store
	dir string

	targets  []int
	files    map[int]store.File
	writers  map[int]*bufio.Writer
	rolling  map[int]uint32
	repaired []int
}

func (s *repairSink) tmpPath(e int) string {
	return filepath.Join(s.dir, s.m.ShardName(e)+".repair")
}

func (s *repairSink) begin(targets []int) error {
	s.cleanup()
	s.targets = append([]int(nil), targets...)
	s.files = make(map[int]store.File, len(targets))
	s.writers = make(map[int]*bufio.Writer, len(targets))
	s.rolling = make(map[int]uint32, len(targets))
	for _, e := range targets {
		f, err := s.st.Create(s.tmpPath(e))
		if err != nil {
			return err
		}
		s.files[e] = f
		s.writers[e] = bufio.NewWriterSize(&store.OffsetWriter{F: f}, 256<<10)
	}
	return nil
}

func (s *repairSink) consume(stripes []*core.Stripe) error {
	for _, stripe := range stripes {
		for _, e := range s.targets {
			strip := stripe.Strips[e]
			if _, err := s.writers[e].Write(strip); err != nil {
				return err
			}
			s.rolling[e] = crc32.Update(s.rolling[e], crc32.IEEETable, strip)
		}
	}
	return nil
}

func (s *repairSink) finish() error {
	for _, e := range s.targets {
		if s.rolling[e] != s.m.Checksums[e] {
			return fmt.Errorf("shard: repaired shard %d fails its checksum", e)
		}
	}
	for _, e := range s.targets {
		if err := s.writers[e].Flush(); err != nil {
			return err
		}
		if err := s.files[e].Sync(); err != nil {
			return err
		}
		if err := s.files[e].Close(); err != nil {
			s.files[e] = nil
			return err
		}
		s.files[e] = nil
		if err := s.st.Rename(s.tmpPath(e), filepath.Join(s.dir, s.m.ShardName(e))); err != nil {
			return err
		}
	}
	s.repaired = append([]int(nil), s.targets...)
	s.files, s.writers = nil, nil
	s.targets = nil
	return nil
}

func (s *repairSink) abort() { s.cleanup() }

func (s *repairSink) canRestart() bool { return true }

// cleanup closes and removes any temp files of an unfinished attempt.
func (s *repairSink) cleanup() {
	for e, f := range s.files {
		if f != nil {
			f.Close()
		}
		s.st.Remove(s.tmpPath(e))
	}
	s.files, s.writers, s.rolling = nil, nil, nil
	s.targets = nil
}

// streamBatch sizes the batch for one streaming call and takes its
// stripes from the shared pool.
func streamBatch(opt Options, m *Manifest, code interface{ W() int }) []*core.Stripe {
	n := opt.batch()
	if n > m.Stripes {
		n = m.Stripes
	}
	if n < 1 {
		n = 1
	}
	pool := core.SharedStripePool(m.K, m.M, code.W(), m.ElemSize)
	stripes := make([]*core.Stripe, n)
	for i := range stripes {
		stripes[i] = pool.Get()
	}
	return stripes
}

// releaseStripes hands a streaming batch back to the shared pool.
func releaseStripes(stripes []*core.Stripe) {
	for _, s := range stripes {
		if s != nil {
			core.SharedStripePool(s.K, s.M(), s.W, s.ElemSize).Put(s)
		}
	}
}

// newShardReaders wraps the streaming shard files in buffered readers;
// skipped (erased) and absent slots stay nil.
func newShardReaders(m *Manifest, files []store.File, skip map[int]bool) []*bufio.Reader {
	_, shardSize := m.shardShape()
	readers := make([]*bufio.Reader, len(files))
	for i, f := range files {
		if f != nil && !skip[i] {
			readers[i] = bufio.NewReaderSize(store.SectionReader(f, shardSize), 128<<10)
		}
	}
	return readers
}

// fillBatch reads the next strip of every streaming shard into each
// stripe of the batch, updating the rolling CRCs when given. Skipped
// strips are left as-is: the decoder rewrites them from scratch. On a
// read failure (transient retries already exhausted below this layer) it
// returns the failing column for quarantine.
func fillBatch(readers []*bufio.Reader, stripes []*core.Stripe, rolling []uint32) (int, error) {
	for _, s := range stripes {
		for i, br := range readers {
			if br == nil {
				continue
			}
			if _, err := io.ReadFull(br, s.Strips[i]); err != nil {
				return i, fmt.Errorf("shard: shard %d failed mid-stream: %w", i, err)
			}
			if rolling != nil {
				rolling[i] = crc32.Update(rolling[i], crc32.IEEETable, s.Strips[i])
			}
		}
	}
	return -1, nil
}

// decodeBatch reconstructs the erased strips of every stripe in the
// batch, over a worker pool when the options ask for one.
func decodeBatch(ctx context.Context, code core.Code, stripes []*core.Stripe, erased []int, opt Options) error {
	if workers := opt.workerCount(); workers > 1 {
		return pipeline.DecodeAll(code, stripes, erased, nil,
			pipeline.Config{Workers: workers, Registry: opt.Registry, Context: ctx})
	}
	for _, s := range stripes {
		if err := code.Decode(s, erased, nil); err != nil {
			return err
		}
	}
	return nil
}
