package benchutil

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/codes"
	"repro/internal/core"
	"repro/internal/xorblk"
)

// The perf-regression gate measures a small fixed set of core hot paths —
// Liberation encode, two-erasure decode, and single-column correction —
// and records both the paper's cost metric (exact XOR counts, which are
// deterministic and machine-independent) and wall-clock timing (which is
// not). CompareCore then holds a current report against a checked-in
// baseline: any XOR-count increase fails outright, while timing is judged
// with a tolerance after normalising by the machines' raw XOR-kernel
// throughput, so a slower CI runner does not read as a code regression.

// Shape of the gated workloads. Fixed forever: changing them invalidates
// the checked-in baseline.
const (
	gateK    = 8
	gateP    = 11 // NextOddPrime(gateK)
	gateElem = 1024
)

// calibBlock is the buffer size of the calibration kernel: large enough to
// stream, small enough to stay in L2 so the number reflects the CPU, not
// the DRAM bus.
const calibBlock = 64 * KB

// CoreBench is one gated measurement: a named workload with its exact
// element-operation counts and its machine-dependent timing.
type CoreBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`  // heap bytes allocated per op
	AllocsPerOp int64   `json:"allocs_per_op"` // heap allocations per op
	XORs        uint64  `json:"xors"`          // exact element XORs per op
	Units       uint64  `json:"units"`         // elements touched (read or produced) per op
	XORsPerUnit float64 `json:"xors_per_unit"`
	// TolNsFrac, when nonzero, overrides the gate-wide ns/op tolerance
	// for this bench — a tightened band for workloads whose baseline was
	// just re-derived and should only ratchet down.
	TolNsFrac float64 `json:"tol_ns_frac,omitempty"`
}

// CoreReport is the bench-gate artifact (artifacts/BENCH_core.json): the
// gated benches plus the context needed to compare across machines.
type CoreReport struct {
	GoVersion     string      `json:"go_version"`
	GOARCH        string      `json:"goarch"`
	CalibMBPerSec float64     `json:"calib_mb_per_sec"`
	Benches       []CoreBench `json:"benches"`
}

// gateRounds repeats each measurement, keeping the best round (minimum
// ns/op). Scheduler and noisy-neighbour interference only ever slows a
// round down, so the best round is the closest estimate of the machine's
// true capability — the same idiom as Options.Rounds in the figure bench.
const gateRounds = 3

// measure times fn over gateRounds rounds of at least benchTime each and
// returns best-round ns/op and MB/s of payload, plus per-op heap traffic.
// fn is warmed once before timing starts.
func measure(benchTime time.Duration, bytesPerOp int, fn func()) (nsPerOp, mbPerSec float64, bytesAlloc, allocs int64) {
	fn() // warm-up: schedules built, caches touched
	for r := 0; r < gateRounds; r++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		iters := 0
		start := time.Now()
		for time.Since(start) < benchTime {
			for i := 0; i < 16; i++ { // amortise the clock reads
				fn()
			}
			iters += 16
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		ns := float64(elapsed.Nanoseconds()) / float64(iters)
		if r == 0 || ns < nsPerOp {
			nsPerOp = ns
			mbPerSec = float64(bytesPerOp) * float64(iters) / elapsed.Seconds() / 1e6
			bytesAlloc = int64(after.TotalAlloc-before.TotalAlloc) / int64(iters)
			allocs = int64(after.Mallocs-before.Mallocs) / int64(iters)
		}
	}
	return nsPerOp, mbPerSec, bytesAlloc, allocs
}

// calibrate measures the raw XOR-kernel throughput of this machine in
// MB/s: the common scale factor behind every gated bench, used by
// CompareCore to tell "this machine is slower" apart from "this code got
// slower".
func calibrate(benchTime time.Duration) float64 {
	dst := make([]byte, calibBlock)
	src := make([]byte, calibBlock)
	for i := range src {
		src[i] = byte(i)
	}
	_, mbps, _, _ := measure(benchTime, calibBlock, func() { xorblk.XorInto(dst, src) })
	return mbps
}

// RunCoreReport measures the gated workloads, spending at least benchTime
// per point (0 = 250ms). The XOR and unit counts are exactly reproducible;
// only the timing fields vary by machine.
func RunCoreReport(benchTime time.Duration) (*CoreReport, error) {
	if benchTime <= 0 {
		benchTime = 250 * time.Millisecond
	}
	code, err := codes.New("liberation", gateK, gateP)
	if err != nil {
		return nil, err
	}
	corrector := code.(core.ColumnCorrector)
	w := code.W()
	s := core.NewStripe(gateK, w, gateElem)
	for col := 0; col < gateK; col++ {
		for i := range s.Strips[col] {
			s.Strips[col][i] = byte(col + i) // deterministic fill
		}
	}

	rep := &CoreReport{
		GoVersion:     runtime.Version(),
		GOARCH:        runtime.GOARCH,
		CalibMBPerSec: calibrate(benchTime),
	}
	add := func(name string, xors, units uint64, bytesPerOp int, fn func()) {
		ns, mbps, ba, al := measure(benchTime, bytesPerOp, fn)
		rep.Benches = append(rep.Benches, CoreBench{
			Name: name, NsPerOp: ns, MBPerSec: mbps,
			BytesPerOp: ba, AllocsPerOp: al,
			XORs: xors, Units: units, XORsPerUnit: float64(xors) / float64(units),
		})
	}

	// Encode: count XORs once (deterministic), then time without counting.
	var ops core.Ops
	if err := code.Encode(s, &ops); err != nil {
		return nil, err
	}
	add(fmt.Sprintf("liberation/encode/k=%d,p=%d,elem=%d", gateK, gateP, gateElem),
		ops.XORs, uint64(2*w), s.DataSize(),
		func() {
			if err := code.Encode(s, nil); err != nil {
				panic(err)
			}
		})

	// Decode of the worst-case pair of data erasures.
	erased := []int{0, 2}
	ops.Reset()
	if err := code.Decode(s, erased, &ops); err != nil {
		return nil, err
	}
	add(fmt.Sprintf("liberation/decode2/k=%d,p=%d,elem=%d,erased=0+2", gateK, gateP, gateElem),
		ops.XORs, uint64(2*w), s.DataSize(),
		func() {
			if err := code.Decode(s, erased, nil); err != nil {
				panic(err)
			}
		})

	// Single-column correction: the degraded-I/O heal rung. Each op
	// re-corrupts one element and locates + repairs it.
	corrupt := func() { s.Elem(1, 0)[0] ^= 0xff }
	corrupt()
	ops.Reset()
	if col, err := corrector.CorrectColumn(s, &ops); err != nil {
		return nil, err
	} else if col != 1 {
		return nil, fmt.Errorf("benchutil: CorrectColumn healed column %d, want 1", col)
	}
	// Correction streams the syndromes of every column, so the bytes an op
	// touches are the whole stripe — (k+2)*w elements — not just the healed
	// column. The band is pinned tighter than the gate-wide tolerance: this
	// baseline was re-derived from the streamed path and should only
	// ratchet down.
	add(fmt.Sprintf("liberation/correct/k=%d,p=%d,elem=%d", gateK, gateP, gateElem),
		ops.XORs, uint64((gateK+2)*w), (gateK+2)*w*gateElem,
		func() {
			corrupt()
			if _, err := corrector.CorrectColumn(s, nil); err != nil {
				panic(err)
			}
		})
	rep.Benches[len(rep.Benches)-1].TolNsFrac = 0.10
	return rep, nil
}

// CompareCore holds cur against base and returns the violations, one line
// each (nil means the gate passes):
//
//   - any difference in a bench's exact XOR count fails — the paper's
//     cost metric is deterministic, so even +-1 XOR is a real algorithmic
//     change, never noise. An increase is a regression; a decrease is an
//     improvement whose new count must be pinned by refreshing the
//     baseline (benchgate -write);
//   - ns/op may not exceed the baseline by more than tol (e.g. 0.15 =
//     +15%), after scaling by the two reports' calibration throughputs so
//     machine speed cancels out (skipped if either calibration is 0). A
//     bench with a nonzero TolNsFrac uses that band instead;
//   - every baseline bench must still be present.
//
// Allocation counts are recorded for inspection but not gated: they move
// with the Go runtime version, not with this repository's algorithms.
func CompareCore(base, cur *CoreReport, tol float64) []string {
	var violations []string
	curBy := make(map[string]CoreBench, len(cur.Benches))
	for _, b := range cur.Benches {
		curBy[b.Name] = b
	}
	scale := 1.0
	if base.CalibMBPerSec > 0 && cur.CalibMBPerSec > 0 {
		scale = cur.CalibMBPerSec / base.CalibMBPerSec
	}
	for _, b := range base.Benches {
		c, ok := curBy[b.Name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: present in baseline but not measured", b.Name))
			continue
		}
		switch {
		case c.XORs > b.XORs:
			violations = append(violations,
				fmt.Sprintf("%s: xors %d > baseline %d (+%d; XOR counts are exact — any increase is a regression)",
					b.Name, c.XORs, b.XORs, c.XORs-b.XORs))
		case c.XORs < b.XORs:
			violations = append(violations,
				fmt.Sprintf("%s: xors %d < baseline %d (-%d; an improvement — pin the new count with benchgate -write)",
					b.Name, c.XORs, b.XORs, b.XORs-c.XORs))
		}
		bandTol := tol
		if b.TolNsFrac > 0 {
			bandTol = b.TolNsFrac
		}
		nsNorm := c.NsPerOp * scale
		if limit := b.NsPerOp * (1 + bandTol); nsNorm > limit {
			violations = append(violations,
				fmt.Sprintf("%s: ns/op %.0f (normalised %.0f) > baseline %.0f +%.0f%% tolerance",
					b.Name, c.NsPerOp, nsNorm, b.NsPerOp, bandTol*100))
		}
	}
	return violations
}

// WriteCoreJSON writes the report as indented JSON to path.
func WriteCoreJSON(path string, rep *CoreReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadCoreJSON reads a report written by WriteCoreJSON.
func LoadCoreJSON(path string) (*CoreReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep CoreReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("benchutil: %s: %w", path, err)
	}
	return &rep, nil
}
