// Package benchutil is the throughput harness behind the paper's Figures
// 9-13: it times real encode/decode work over word-interleaved stripes and
// reports GB/s, sweeping the element size (Figure 9), the number of data
// disks with p varying (Figures 10 and 12) and with p fixed at 31
// (Figures 11 and 13), always comparing the original (bit-matrix
// scheduled) implementation against the paper's optimal algorithms.
//
// Absolute numbers depend on the machine; the reproduced claims are the
// relative ones — who wins, by what factor, and how the gap scales with k
// and the element size.
package benchutil

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bitmatrix"
	"repro/internal/codes"
	"repro/internal/core"
)

// KB is 1024 bytes.
const KB = 1024

// Options controls measurement effort.
type Options struct {
	// MinTime is the minimum wall time spent per measured point.
	MinTime time.Duration
	// MaxPatterns caps the erasure patterns sampled per decode point
	// (0 = all pairs).
	MaxPatterns int
	// Rounds repeats each measurement and keeps the best round, shaking
	// off scheduler noise (0 behaves like 1).
	Rounds int
}

// DefaultOptions is tuned for the libbench CLI: long enough for stable
// numbers, short enough that regenerating every figure stays interactive.
func DefaultOptions() Options {
	return Options{MinTime: 100 * time.Millisecond, Rounds: 3}
}

// Quick returns options for smoke tests.
func Quick() Options {
	return Options{MinTime: 5 * time.Millisecond, MaxPatterns: 6, Rounds: 1}
}

// ThroughputPoint is one measured sample.
type ThroughputPoint struct {
	X    int     // k, or log2(element size) for Figure 9
	GBps float64 // data bytes processed per second, in GB/s
}

// ThroughputSeries is one curve.
type ThroughputSeries struct {
	Name   string
	Points []ThroughputPoint
}

// ThroughputFigure is a reproduced throughput figure.
type ThroughputFigure struct {
	ID     string
	Title  string
	XLabel string
	Series []ThroughputSeries
}

// variant names the two compared implementations.
const (
	VariantOriginal = "original"
	VariantOptimal  = "optimal"
)

// newVariant builds the requested Liberation implementation through the
// code registry. The original variant runs with Jerasure's lazy
// scheduling semantics (schedule and decoding matrix rebuilt per call),
// which is what the paper benchmarks against.
func newVariant(variant string, k, p int) (core.Code, error) {
	switch variant {
	case VariantOriginal:
		c, err := codes.New("liberation-original", k, p)
		if err != nil {
			return nil, err
		}
		c.(*bitmatrix.Code).LazyEncodeSchedule = true
		return c, nil
	case VariantOptimal:
		return codes.New("liberation", k, p)
	}
	return nil, fmt.Errorf("benchutil: unknown variant %q", variant)
}

// MeasureEncode returns the encoding throughput of code c in GB/s of data
// processed, measured over at least opt.MinTime per round (best of
// opt.Rounds rounds).
func MeasureEncode(c core.Code, elemSize int, opt Options) float64 {
	best := 0.0
	for r := 0; r < maxInt(opt.Rounds, 1); r++ {
		if v := measureEncodeOnce(c, elemSize, opt); v > best {
			best = v
		}
	}
	return best
}

func measureEncodeOnce(c core.Code, elemSize int, opt Options) float64 {
	s := core.NewStripeFor(c, elemSize)
	s.FillRandom(rand.New(rand.NewSource(1)))
	if err := c.Encode(s, nil); err != nil {
		panic(err)
	}
	bytes := float64(s.DataSize())
	iters := 0
	start := time.Now()
	for time.Since(start) < opt.MinTime {
		if err := c.Encode(s, nil); err != nil {
			panic(err)
		}
		iters++
	}
	elapsed := time.Since(start).Seconds()
	return bytes * float64(iters) / elapsed / 1e9
}

// MeasureDecode returns the decoding throughput of code c in GB/s,
// averaged over the possible two-strip erasure patterns as the paper
// does (best of opt.Rounds rounds).
func MeasureDecode(c core.Code, elemSize int, opt Options) float64 {
	best := 0.0
	for r := 0; r < maxInt(opt.Rounds, 1); r++ {
		if v := measureDecodeOnce(c, elemSize, opt); v > best {
			best = v
		}
	}
	return best
}

func measureDecodeOnce(c core.Code, elemSize int, opt Options) float64 {
	s := core.NewStripeFor(c, elemSize)
	s.FillRandom(rand.New(rand.NewSource(2)))
	if err := c.Encode(s, nil); err != nil {
		panic(err)
	}
	patterns := core.ErasurePairs(c.K() + c.M())
	if opt.MaxPatterns > 0 && len(patterns) > opt.MaxPatterns {
		// Deterministic spread over the pattern space.
		step := len(patterns) / opt.MaxPatterns
		var sampled [][2]int
		for i := 0; i < len(patterns); i += step {
			sampled = append(sampled, patterns[i])
		}
		patterns = sampled
	}
	bytes := float64(s.DataSize())
	perPattern := opt.MinTime / time.Duration(len(patterns))
	if perPattern < time.Millisecond {
		perPattern = time.Millisecond
	}
	total := 0.0
	for _, pat := range patterns {
		iters := 0
		start := time.Now()
		for time.Since(start) < perPattern {
			if err := c.Decode(s, pat[:], nil); err != nil {
				panic(err)
			}
			iters++
		}
		elapsed := time.Since(start).Seconds()
		total += bytes * float64(iters) / elapsed / 1e9
	}
	return total / float64(len(patterns))
}

// ElementSizeFigure reproduces Figure 9: encoding throughput against
// element size (4KB..64KB) for a given p with k = p, original vs optimal.
func ElementSizeFigure(p int, opt Options) ThroughputFigure {
	fig := ThroughputFigure{
		ID:     "9",
		Title:  fmt.Sprintf("Encoding throughputs with different element size (p = %d)", p),
		XLabel: "log2(element size)",
	}
	for _, variant := range []string{VariantOptimal, VariantOriginal} {
		series := ThroughputSeries{Name: variant + " encoding"}
		for logSize := 12; logSize <= 16; logSize++ {
			c, err := newVariant(variant, p, p)
			if err != nil {
				panic(err)
			}
			gbps := MeasureEncode(c, 1<<logSize, opt)
			series.Points = append(series.Points, ThroughputPoint{X: logSize, GBps: gbps})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig
}

// EncodeFigure reproduces Figure 10 (fixedP == 0: p varying with k) or
// Figure 11 (fixedP == 31) at the given element size.
func EncodeFigure(ks []int, fixedP, elemSize int, opt Options) ThroughputFigure {
	id, title := "10", "Encoding throughputs (p varying with k)"
	if fixedP != 0 {
		id, title = "11", fmt.Sprintf("Encoding throughputs (p = %d)", fixedP)
	}
	fig := ThroughputFigure{
		ID:     id,
		Title:  fmt.Sprintf("%s, element size = %dKB", title, elemSize/KB),
		XLabel: "k - Number of data disks",
	}
	for _, variant := range []string{VariantOriginal, VariantOptimal} {
		series := ThroughputSeries{Name: variant + " encoding"}
		for _, k := range ks {
			p := fixedP
			if p == 0 {
				p = core.NextOddPrime(k)
			}
			if k > p {
				continue
			}
			c, err := newVariant(variant, k, p)
			if err != nil {
				panic(err)
			}
			series.Points = append(series.Points,
				ThroughputPoint{X: k, GBps: MeasureEncode(c, elemSize, opt)})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig
}

// DecodeFigure reproduces Figure 12 (fixedP == 0) or Figure 13
// (fixedP == 31) at the given element size.
func DecodeFigure(ks []int, fixedP, elemSize int, opt Options) ThroughputFigure {
	id, title := "12", "Decoding throughputs (p varying with k)"
	if fixedP != 0 {
		id, title = "13", fmt.Sprintf("Decoding throughputs (p = %d)", fixedP)
	}
	fig := ThroughputFigure{
		ID:     id,
		Title:  fmt.Sprintf("%s, element size = %dKB", title, elemSize/KB),
		XLabel: "k - Number of data disks",
	}
	for _, variant := range []string{VariantOptimal, VariantOriginal} {
		series := ThroughputSeries{Name: variant + " decoding"}
		for _, k := range ks {
			p := fixedP
			if p == 0 {
				p = core.NextOddPrime(k)
			}
			if k > p {
				continue
			}
			c, err := newVariant(variant, k, p)
			if err != nil {
				panic(err)
			}
			series.Points = append(series.Points,
				ThroughputPoint{X: k, GBps: MeasureDecode(c, elemSize, opt)})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
