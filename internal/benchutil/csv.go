package benchutil

import (
	"fmt"
	"sort"
	"strings"
)

// CSV renders the throughput figure as comma-separated values (GB/s), one
// line per x value, ready for external plotting.
func (f ThroughputFigure) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.ReplaceAll(f.XLabel, ",", ";"))
	for _, s := range f.Series {
		sb.WriteByte(',')
		sb.WriteString(strings.ReplaceAll(s.Name, ",", ";"))
	}
	sb.WriteByte('\n')
	xs := map[int]bool{}
	for _, s := range f.Series {
		for _, pt := range s.Points {
			xs[pt.X] = true
		}
	}
	sorted := make([]int, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Ints(sorted)
	for _, x := range sorted {
		fmt.Fprintf(&sb, "%d", x)
		for _, s := range f.Series {
			if v, ok := lookupT(s, x); ok {
				fmt.Fprintf(&sb, ",%.6f", v)
			} else {
				sb.WriteByte(',')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
