package benchutil

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const gateTestTime = 5 * time.Millisecond

// TestCoreReportDeterministicXORs pins that the gated XOR counts are exact
// and reproducible — the property the whole gate rests on: two runs on the
// same code must agree to the last XOR, and every workload must do real
// work.
func TestCoreReportDeterministicXORs(t *testing.T) {
	a, err := RunCoreReport(gateTestTime)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCoreReport(gateTestTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Benches) != 3 || len(b.Benches) != 3 {
		t.Fatalf("bench counts = %d/%d, want 3", len(a.Benches), len(b.Benches))
	}
	for i, ab := range a.Benches {
		bb := b.Benches[i]
		if ab.Name != bb.Name || ab.XORs != bb.XORs || ab.Units != bb.Units {
			t.Errorf("run disagreement: %q xors=%d units=%d vs %q xors=%d units=%d",
				ab.Name, ab.XORs, ab.Units, bb.Name, bb.XORs, bb.Units)
		}
		if ab.XORs == 0 || ab.Units == 0 || ab.NsPerOp <= 0 || ab.MBPerSec <= 0 {
			t.Errorf("%q: degenerate measurement %+v", ab.Name, ab)
		}
	}
	// The paper's optimality claim, checked at gate shape: encoding k=8
	// data strips into two parities costs k-1 XORs per parity element
	// plus the (p-1)/2 extra from the Q column's bit offsets — strictly
	// under k XORs per parity element.
	enc := a.Benches[0]
	if perUnit := enc.XORsPerUnit; perUnit < float64(gateK-1) || perUnit >= float64(gateK) {
		t.Errorf("encode xors/unit = %v, want in [k-1, k) = [%d, %d)", perUnit, gateK-1, gateK)
	}
	if a.CalibMBPerSec <= 0 {
		t.Errorf("calibration throughput = %v, want > 0", a.CalibMBPerSec)
	}
}

// TestGateFailsInjectedXORRegression is the gate's acceptance scenario: a
// +20% XOR-count regression injected into an otherwise identical report
// must fail CompareCore, with the failure naming the bench and the counts.
func TestGateFailsInjectedXORRegression(t *testing.T) {
	base, err := RunCoreReport(gateTestTime)
	if err != nil {
		t.Fatal(err)
	}
	if v := CompareCore(base, base, 0.15); v != nil {
		t.Fatalf("report does not pass against itself: %v", v)
	}

	cur := *base
	cur.Benches = append([]CoreBench(nil), base.Benches...)
	cur.Benches[0].XORs += cur.Benches[0].XORs / 5 // +20%
	violations := CompareCore(base, &cur, 0.15)
	if len(violations) != 1 {
		t.Fatalf("violations = %v, want exactly the XOR regression", violations)
	}
	if !strings.Contains(violations[0], cur.Benches[0].Name) ||
		!strings.Contains(violations[0], "xors") {
		t.Errorf("violation %q does not name the bench and the metric", violations[0])
	}

	// Even a single extra XOR fails: the count is exact, never noisy.
	cur.Benches[0].XORs = base.Benches[0].XORs + 1
	if v := CompareCore(base, &cur, 0.15); len(v) != 1 {
		t.Errorf("+1 XOR not caught: %v", v)
	}
	// A decrease is an improvement, but the gate is strict equality: it
	// fails too, telling the author to pin the better count in the
	// baseline rather than leave it unguarded.
	cur.Benches[0].XORs = base.Benches[0].XORs - 1
	v := CompareCore(base, &cur, 0.15)
	if len(v) != 1 {
		t.Fatalf("-1 XOR not caught: %v", v)
	}
	if !strings.Contains(v[0], "improvement") || !strings.Contains(v[0], "-write") {
		t.Errorf("violation %q should point at refreshing the baseline", v[0])
	}
}

// TestGatePerBenchTolerance checks that a bench carrying its own TolNsFrac
// is judged against that band instead of the gate-wide tolerance.
func TestGatePerBenchTolerance(t *testing.T) {
	base := &CoreReport{
		CalibMBPerSec: 1000,
		Benches:       []CoreBench{{Name: "x", NsPerOp: 1000, XORs: 10, Units: 5, TolNsFrac: 0.10}},
	}
	cur := func(ns float64) *CoreReport {
		return &CoreReport{
			CalibMBPerSec: 1000,
			Benches:       []CoreBench{{Name: "x", NsPerOp: ns, XORs: 10, Units: 5}},
		}
	}
	// +12% is inside the 15% global band but outside the bench's own 10%.
	if v := CompareCore(base, cur(1120), 0.15); len(v) != 1 {
		t.Errorf("+12%% beyond the bench's 10%% band passed: %v", v)
	}
	if v := CompareCore(base, cur(1080), 0.15); v != nil {
		t.Errorf("+8%% inside the bench's 10%% band flagged: %v", v)
	}
}

// TestGateThroughputTolerance checks the timing arm: ns/op inside the
// tolerance band passes, beyond it fails, and the calibration scaling
// cancels pure machine-speed differences in either direction.
func TestGateThroughputTolerance(t *testing.T) {
	base := &CoreReport{
		CalibMBPerSec: 1000,
		Benches:       []CoreBench{{Name: "x", NsPerOp: 1000, XORs: 10, Units: 5}},
	}
	cur := func(ns, calib float64) *CoreReport {
		return &CoreReport{
			CalibMBPerSec: calib,
			Benches:       []CoreBench{{Name: "x", NsPerOp: ns, XORs: 10, Units: 5}},
		}
	}
	if v := CompareCore(base, cur(1100, 1000), 0.15); v != nil {
		t.Errorf("+10%% inside 15%% tolerance flagged: %v", v)
	}
	if v := CompareCore(base, cur(1300, 1000), 0.15); len(v) != 1 {
		t.Errorf("+30%% beyond 15%% tolerance passed: %v", v)
	}
	// Twice-as-slow machine, same code: raw ns doubles, calibration
	// halves, normalised ns is unchanged — must pass.
	if v := CompareCore(base, cur(2000, 500), 0.15); v != nil {
		t.Errorf("slow machine misread as code regression: %v", v)
	}
	// Twice-as-fast machine hiding a real +30% code regression: raw ns
	// looks better than baseline, normalisation exposes it.
	if v := CompareCore(base, cur(650, 2000), 0.15); len(v) != 1 {
		t.Errorf("fast machine masked a code regression: %v", v)
	}
	// Missing calibration (hand-written baseline): raw ns compared.
	if v := CompareCore(&CoreReport{Benches: base.Benches}, cur(1100, 0), 0.15); v != nil {
		t.Errorf("uncalibrated comparison flagged in-tolerance ns: %v", v)
	}
	// A bench dropped from the current report is itself a violation.
	if v := CompareCore(base, &CoreReport{CalibMBPerSec: 1000}, 0.15); len(v) != 1 {
		t.Errorf("missing bench not flagged: %v", v)
	}
}

// TestCoreJSONRoundTrip checks the artifact survives write + load intact.
func TestCoreJSONRoundTrip(t *testing.T) {
	rep, err := RunCoreReport(gateTestTime)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_core.json")
	if err := WriteCoreJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCoreJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.GoVersion != rep.GoVersion || len(got.Benches) != len(rep.Benches) {
		t.Fatalf("round trip changed the report: %+v vs %+v", got, rep)
	}
	for i := range got.Benches {
		if got.Benches[i] != rep.Benches[i] {
			t.Errorf("bench %d changed: %+v vs %+v", i, got.Benches[i], rep.Benches[i])
		}
	}
	if v := CompareCore(rep, got, 0.15); v != nil {
		t.Errorf("round-tripped report fails against its source: %v", v)
	}
}
