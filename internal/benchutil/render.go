package benchutil

import (
	"fmt"
	"sort"
	"strings"
)

// Render formats a throughput figure as an aligned text table.
func (f ThroughputFigure) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure %s: %s\n", f.ID, f.Title)

	xs := map[int]bool{}
	for _, s := range f.Series {
		for _, pt := range s.Points {
			xs[pt.X] = true
		}
	}
	sorted := make([]int, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Ints(sorted)

	fmt.Fprintf(&sb, "%8s", f.XLabel[:min(8, len(f.XLabel))])
	for _, s := range f.Series {
		fmt.Fprintf(&sb, " %20s", s.Name+" (GB/s)")
	}
	sb.WriteByte('\n')
	for _, x := range sorted {
		fmt.Fprintf(&sb, "%8d", x)
		for _, s := range f.Series {
			v, ok := lookupT(s, x)
			if !ok {
				fmt.Fprintf(&sb, " %20s", "-")
			} else {
				fmt.Fprintf(&sb, " %20.3f", v)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func lookupT(s ThroughputSeries, x int) (float64, bool) {
	for _, pt := range s.Points {
		if pt.X == x {
			return pt.GBps, true
		}
	}
	return 0, false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SeriesByName returns the named series, or an empty one.
func (f ThroughputFigure) SeriesByName(name string) ThroughputSeries {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return ThroughputSeries{}
}
