package benchutil

import (
	"strings"
	"testing"
)

func TestMeasureEncodePositive(t *testing.T) {
	for _, variant := range []string{VariantOptimal, VariantOriginal} {
		c, err := newVariant(variant, 5, 5)
		if err != nil {
			t.Fatal(err)
		}
		gbps := MeasureEncode(c, 4*KB, Quick())
		if gbps <= 0 {
			t.Errorf("%s: throughput %.3f GB/s", variant, gbps)
		}
	}
}

func TestOptimalDecodeBeatsOriginal(t *testing.T) {
	// The headline throughput claim (Figures 12/13): the optimal decoder
	// is substantially faster than the bit-matrix-scheduled original,
	// which redoes matrix inversion and scheduling on every call.
	opt := Quick()
	oc, _ := newVariant(VariantOptimal, 11, 11)
	orig, _ := newVariant(VariantOriginal, 11, 11)
	a := MeasureDecode(oc, 4*KB, opt)
	b := MeasureDecode(orig, 4*KB, opt)
	if a <= b {
		t.Errorf("optimal decode %.3f GB/s not above original %.3f GB/s", a, b)
	}
}

func TestFigureRendering(t *testing.T) {
	fig := EncodeFigure([]int{4, 5}, 0, 4*KB, Quick())
	out := fig.Render()
	if !strings.Contains(out, "Figure 10") || !strings.Contains(out, "optimal encoding") {
		t.Errorf("render output:\n%s", out)
	}
	if len(fig.SeriesByName("optimal encoding").Points) != 2 {
		t.Error("missing points in optimal series")
	}
	fig9 := ElementSizeFigure(5, Quick())
	if !strings.Contains(fig9.Render(), "Figure 9") {
		t.Error("figure 9 render broken")
	}
	fig13 := DecodeFigure([]int{5}, 31, 4*KB, Quick())
	if !strings.Contains(fig13.Render(), "Figure 13") {
		t.Error("figure 13 render broken")
	}
}

func TestCSV(t *testing.T) {
	fig := EncodeFigure([]int{4}, 0, 4*KB, Quick())
	csv := fig.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "optimal encoding") {
		t.Errorf("CSV output:\n%s", csv)
	}
}
