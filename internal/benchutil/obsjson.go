package benchutil

import (
	"encoding/json"
	"os"
	"runtime"

	"repro/internal/codes"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// ObsReport is the machine-readable observability artifact the bench
// harness can emit (see BENCH_OBS_JSON in the Makefile): the full metric
// snapshot of a deterministic instrumented workload, plus enough context
// to compare runs.
type ObsReport struct {
	GoVersion string       `json:"go_version"`
	GOARCH    string       `json:"goarch"`
	K         int          `json:"k"`
	P         int          `json:"p"`
	ElemSize  int          `json:"elem_size"`
	Stripes   int          `json:"stripes"`
	Snapshot  obs.Snapshot `json:"snapshot"`
}

// RunObservedWorkload drives a fixed encode + rebuild workload against an
// instrumented Liberation code and returns the resulting report. The
// element-operation counters are exactly reproducible; only the latency
// and throughput fields vary by machine.
func RunObservedWorkload(k, p, elemSize, stripes int) (*ObsReport, error) {
	reg := obs.NewRegistry()
	code, err := codes.NewObserved("liberation", k, p, reg)
	if err != nil {
		return nil, err
	}

	batch := make([]*core.Stripe, stripes)
	for i := range batch {
		s := core.NewStripe(k, code.W(), elemSize)
		for t := 0; t < k; t++ {
			for j := range s.Strips[t] {
				s.Strips[t][j] = byte(i + t + j) // deterministic fill
			}
		}
		batch[i] = s
	}
	cfg := pipeline.Config{Workers: 2, Registry: reg}
	if err := pipeline.EncodeAll(code, batch, nil, cfg); err != nil {
		return nil, err
	}
	for _, s := range batch {
		s.ZeroStrip(0)
		s.ZeroStrip(2)
	}
	if err := pipeline.DecodeAll(code, batch, []int{0, 2}, nil, cfg); err != nil {
		return nil, err
	}

	return &ObsReport{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		K:         k,
		P:         p,
		ElemSize:  elemSize,
		Stripes:   stripes,
		Snapshot:  reg.Snapshot(),
	}, nil
}

// WriteObsJSON writes the report as indented JSON to path.
func WriteObsJSON(path string, rep *ObsReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
