package core

import "sync"

// StripePool recycles Stripes of one fixed shape through a sync.Pool so
// steady-state streaming workloads (the shard pipeline, SplitBuffer-fed
// bulk encodes) allocate nothing per stripe. Get returns a fully zeroed
// stripe, so pooled stripes are interchangeable with NewStripeM ones —
// in particular the zero-padding of partially filled data strips keeps
// working without every caller remembering to clear reused memory.
type StripePool struct {
	k, m, w, elemSize int
	pool              sync.Pool
}

// NewStripePool returns a pool producing stripes of the given shape
// (k data strips, m parity strips).
func NewStripePool(k, m, w, elemSize int) *StripePool {
	p := &StripePool{k: k, m: m, w: w, elemSize: elemSize}
	p.pool.New = func() any { return NewStripeM(k, m, w, elemSize) }
	return p
}

// Get returns a zeroed stripe of the pool's shape.
func (p *StripePool) Get() *Stripe {
	s := p.pool.Get().(*Stripe)
	for _, strip := range s.Strips {
		for i := range strip {
			strip[i] = 0
		}
	}
	return s
}

// Put returns a stripe to the pool. Stripes of the wrong shape are
// dropped rather than poisoning the pool; nil is ignored. The caller
// must not retain any reference to s (or its strips) after Put.
func (p *StripePool) Put(s *Stripe) {
	if s == nil || s.K != p.k || s.M() != p.m || s.W != p.w || s.ElemSize != p.elemSize {
		return
	}
	p.pool.Put(s)
}

// sharedPools caches one StripePool per shape, so independent callers
// (the shard pipeline, pipeline.SplitBuffer) recycle each other's
// stripes.
var sharedPools sync.Map // stripeShape -> *StripePool

type stripeShape struct{ k, m, w, elemSize int }

// SharedStripePool returns the process-wide pool for the given shape.
func SharedStripePool(k, m, w, elemSize int) *StripePool {
	key := stripeShape{k, m, w, elemSize}
	if p, ok := sharedPools.Load(key); ok {
		return p.(*StripePool)
	}
	p, _ := sharedPools.LoadOrStore(key, NewStripePool(k, m, w, elemSize))
	return p.(*StripePool)
}
