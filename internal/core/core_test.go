package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrimes(t *testing.T) {
	primes := map[int]bool{2: true, 3: true, 5: true, 7: true, 11: true,
		13: true, 17: true, 19: true, 23: true, 29: true, 31: true}
	for n := -5; n <= 31; n++ {
		if IsPrime(n) != primes[n] {
			t.Errorf("IsPrime(%d) = %v", n, IsPrime(n))
		}
	}
	cases := map[int]int{-3: 3, 0: 3, 2: 3, 3: 3, 4: 5, 5: 5, 6: 7,
		8: 11, 14: 17, 24: 29, 30: 31, 32: 37}
	for in, want := range cases {
		if got := NextOddPrime(in); got != want {
			t.Errorf("NextOddPrime(%d) = %d, want %d", in, got, want)
		}
	}
	got := OddPrimesUpTo(13)
	want := []int{3, 5, 7, 11, 13}
	if len(got) != len(want) {
		t.Fatalf("OddPrimesUpTo(13) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OddPrimesUpTo(13) = %v", got)
		}
	}
}

func TestMod(t *testing.T) {
	if err := quick.Check(func(x int16, m uint8) bool {
		mm := int(m%50) + 1
		got := Mod(int(x), mm)
		return got >= 0 && got < mm && (got-int(x))%mm == 0
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestStripeLayout(t *testing.T) {
	s := NewStripe(3, 5, 8)
	if s.NumStrips() != 5 || s.DataSize() != 3*5*8 {
		t.Fatalf("bad shape: %d strips, %d data bytes", s.NumStrips(), s.DataSize())
	}
	// Elem must alias the strip storage.
	s.Elem(2, 3)[0] = 0xab
	if s.Strips[2][3*8] != 0xab {
		t.Error("Elem does not alias strip storage")
	}
	if err := s.CheckShape(3, 2, 5); err != nil {
		t.Error(err)
	}
	if err := s.CheckShape(4, 2, 5); err == nil {
		t.Error("CheckShape accepted wrong k")
	}
	if err := s.CheckShape(3, 3, 5); err == nil {
		t.Error("CheckShape accepted wrong m")
	}
	m3 := NewStripeM(3, 3, 5, 8)
	if m3.M() != 3 || m3.NumStrips() != 6 {
		t.Fatalf("NewStripeM shape: m=%d strips=%d", m3.M(), m3.NumStrips())
	}
	if err := m3.CheckShape(3, 3, 5); err != nil {
		t.Error(err)
	}
}

func TestStripeCloneEqual(t *testing.T) {
	s := NewStripe(4, 3, 16)
	s.FillRandom(rand.New(rand.NewSource(7)))
	c := s.Clone()
	if !s.Equal(c) || !s.EqualData(c) {
		t.Fatal("clone differs")
	}
	c.Strips[5][0] ^= 1
	if s.Equal(c) {
		t.Error("Equal missed a parity difference")
	}
	if !s.EqualData(c) {
		t.Error("EqualData must ignore parity strips")
	}
	c.Strips[0][0] ^= 1
	if s.EqualData(c) {
		t.Error("EqualData missed a data difference")
	}
	s.ZeroStrip(0)
	for _, b := range s.Strips[0] {
		if b != 0 {
			t.Fatal("ZeroStrip left data")
		}
	}
}

func TestOpsCounting(t *testing.T) {
	var ops Ops
	a := make([]byte, 8)
	b := make([]byte, 8)
	ops.Xor(a, a, b)
	ops.XorInto(a, b)
	ops.Copy(a, b)
	ops.Zero(a)
	if ops.XORs != 2 || ops.Copies != 1 || ops.Zeros != 1 {
		t.Errorf("ops = %v, want 2 XORs, 1 copy, 1 zero", &ops)
	}
	ops.Add(Ops{XORs: 3, Copies: 4, Zeros: 5})
	if ops.XORs != 5 || ops.Copies != 5 || ops.Zeros != 6 {
		t.Errorf("Add gave %v", &ops)
	}
	ops.Reset()
	if ops.XORs != 0 || ops.Copies != 0 || ops.Zeros != 0 {
		t.Error("Reset failed")
	}
	// nil Ops must be usable.
	var nilOps *Ops
	nilOps.Xor(a, a, b)
	nilOps.Copy(a, b)
	nilOps.Zero(a)
	nilOps.Reset()
	nilOps.Add(Ops{})
	_ = nilOps.String()
}

func TestErasurePairs(t *testing.T) {
	pairs := ErasurePairs(5)
	if len(pairs) != 10 {
		t.Fatalf("ErasurePairs(5) has %d entries, want 10", len(pairs))
	}
	seen := map[[2]int]bool{}
	for _, p := range pairs {
		if p[0] >= p[1] {
			t.Fatalf("unordered pair %v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
	if len(DataErasurePairs(4)) != 6 {
		t.Error("DataErasurePairs(4) wrong size")
	}
}
