package core

// IsPrime reports whether n is prime. The array codes only ever need small
// primes (p <= a few hundred), so trial division is ample.
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := 3; d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// NextOddPrime returns the smallest odd prime >= n. The Liberation and
// EVENODD constructions require an odd prime p >= k; when a RAID-6 system
// does not intend to grow, p is chosen this way to minimize column height.
func NextOddPrime(n int) int {
	if n < 3 {
		return 3
	}
	if n%2 == 0 {
		n++
	}
	for !IsPrime(n) {
		n += 2
	}
	return n
}

// OddPrimesUpTo returns all odd primes <= n in increasing order.
func OddPrimesUpTo(n int) []int {
	var out []int
	for p := 3; p <= n; p += 2 {
		if IsPrime(p) {
			out = append(out, p)
		}
	}
	return out
}

// Mod returns x mod m in 0..m-1 for any (possibly negative) x. It is the
// paper's <x> operator.
func Mod(x, m int) int {
	x %= m
	if x < 0 {
		x += m
	}
	return x
}
