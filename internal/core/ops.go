package core

import (
	"fmt"

	"repro/internal/xorblk"
)

// Ops executes element-level operations on behalf of a code while counting
// them. The paper's primary metric is the number of XOR operations per
// parity (or missing) bit; routing every element XOR through an Ops value
// gives exact counts with one integer increment of overhead per block XOR.
//
// A nil *Ops is valid and counts nothing; the kernels still run.
// Copies are counted separately and are free in the paper's cost model
// (Jerasure likewise distinguishes memcpy from XOR in its schedules).
type Ops struct {
	XORs   uint64 // element XOR operations performed
	Copies uint64 // element copies performed
	Zeros  uint64 // element zeroings performed (memory traffic, not arithmetic)
}

// Xor sets dst = a ^ b and counts one XOR.
func (o *Ops) Xor(dst, a, b []byte) {
	if o != nil {
		o.XORs++
	}
	xorblk.Xor(dst, a, b)
}

// XorInto sets dst ^= src and counts one XOR.
func (o *Ops) XorInto(dst, src []byte) {
	if o != nil {
		o.XORs++
	}
	xorblk.XorInto(dst, src)
}

// Copy sets dst = src and counts one copy (not an XOR).
func (o *Ops) Copy(dst, src []byte) {
	if o != nil {
		o.Copies++
	}
	copy(dst, src)
}

// Zero clears dst and counts one zeroing. Zeroing is bookkeeping, not
// arithmetic: it is excluded from the paper's XOR metric (it only arises
// for degenerate all-phantom constraints), but it is still a block of
// memory traffic, so observability snapshots report it separately.
func (o *Ops) Zero(dst []byte) {
	if o != nil {
		o.Zeros++
	}
	for i := range dst {
		dst[i] = 0
	}
}

// Reset clears the counters.
func (o *Ops) Reset() {
	if o != nil {
		o.XORs, o.Copies, o.Zeros = 0, 0, 0
	}
}

// Add accumulates other's counters into o.
func (o *Ops) Add(other Ops) {
	if o != nil {
		o.XORs += other.XORs
		o.Copies += other.Copies
		o.Zeros += other.Zeros
	}
}

func (o *Ops) String() string {
	if o == nil {
		return "ops{nil}"
	}
	return fmt.Sprintf("ops{xors=%d copies=%d zeros=%d}", o.XORs, o.Copies, o.Zeros)
}

// XorInto2 sets dst ^= a ^ b (two accumulations in one pass, counted as
// two XORs).
func (o *Ops) XorInto2(dst, a, b []byte) {
	if o != nil {
		o.XORs += 2
	}
	xorblk.XorInto2(dst, a, b)
}

// XorInto3 sets dst ^= a ^ b ^ c (counted as three XORs).
func (o *Ops) XorInto3(dst, a, b, c []byte) {
	if o != nil {
		o.XORs += 3
	}
	xorblk.XorInto3(dst, a, b, c)
}

// XorInto4 sets dst ^= a ^ b ^ c ^ d (counted as four XORs).
func (o *Ops) XorInto4(dst, a, b, c, d []byte) {
	if o != nil {
		o.XORs += 4
	}
	xorblk.XorInto4(dst, a, b, c, d)
}
