package core

import (
	"math/rand"
	"testing"
)

func TestStripePoolZeroesReusedStripes(t *testing.T) {
	p := NewStripePool(3, 2, 5, 16)
	s := p.Get()
	if err := s.CheckShape(3, 2, 5); err != nil {
		t.Fatalf("pooled stripe shape: %v", err)
	}
	s.FillRandom(rand.New(rand.NewSource(1)))
	s.Strips[3][0] = 0xff // dirty a parity strip too
	p.Put(s)
	got := p.Get()
	for col, strip := range got.Strips {
		for i, b := range strip {
			if b != 0 {
				t.Fatalf("reused stripe not zeroed at strip %d byte %d", col, i)
			}
		}
	}
}

func TestStripePoolRejectsWrongShape(t *testing.T) {
	p := NewStripePool(3, 2, 5, 16)
	p.Put(NewStripe(4, 5, 16))     // wrong k: must be dropped, not recycled
	p.Put(NewStripeM(3, 3, 5, 16)) // wrong m: likewise dropped
	p.Put(nil)
	s := p.Get()
	if s.K != 3 || s.W != 5 || s.ElemSize != 16 {
		t.Fatalf("pool produced shape %dx%dx%d, want 3x5x16", s.K, s.W, s.ElemSize)
	}
}

func TestSharedStripePoolPerShape(t *testing.T) {
	a := SharedStripePool(4, 2, 5, 32)
	b := SharedStripePool(4, 2, 5, 32)
	c := SharedStripePool(4, 2, 7, 32)
	d := SharedStripePool(4, 3, 5, 32)
	if a != b {
		t.Error("same shape returned distinct shared pools")
	}
	if a == c || a == d {
		t.Error("different shapes share one pool")
	}
	s := a.Get()
	a.Put(s)
	if got := b.Get(); got.K != 4 || got.W != 5 || got.ElemSize != 32 {
		t.Errorf("shared pool shape %dx%dx%d, want 4x5x32", got.K, got.W, got.ElemSize)
	}
}
