// Package core defines the shared vocabulary of the erasure codes in this
// repository: the stripe/strip/element data model, the Code interface that
// every code implements, XOR-operation accounting, and small number-theory
// helpers (odd primes) that the array codes are built on.
//
// Terminology follows the paper, generalized from two parities to m: a
// stripe is a two-dimensional array of elements with one strip (column)
// per disk; the first K strips hold data and the remaining M hold the
// parities. For the RAID-6 codes the paper studies, M = 2 and the parity
// strips are P (row parity, column K) and Q (anti-diagonal parity, column
// K+1); codes with M >= 3 tolerate correspondingly more erasures. An
// element is a byte block whose size is a multiple of the machine word, so
// a single element XOR advances 8*elemSize interleaved codewords at once.
package core

import (
	"errors"
	"fmt"
	"math/rand"
)

// Errors shared by the code implementations.
var (
	ErrTooManyErasures = errors.New("core: more erasures than the code tolerates")
	ErrShape           = errors.New("core: stripe shape does not match code")
	ErrParams          = errors.New("core: invalid code parameters")
)

// A Code is a systematic erasure code over stripes: K data strips plus M
// parity strips, each strip holding W elements. The RAID-6 families have
// M = 2 with P at column K and Q at column K+1.
type Code interface {
	// Name identifies the code and algorithm variant, e.g.
	// "liberation-optimal" or "rdp".
	Name() string
	// K returns the number of data strips.
	K() int
	// M returns the number of parity strips (the erasure tolerance).
	// Every RAID-6 family returns 2.
	M() int
	// W returns the number of elements per strip (the column height of the
	// underlying bit array: p for Liberation, p-1 for EVENODD and RDP).
	W() int
	// Encode computes the M parity strips from the data strips in s.
	Encode(s *Stripe, ops *Ops) error
	// Decode reconstructs the erased strips listed in erased (column
	// indices in 0..K+M-1, at most M of them) from the surviving strips.
	// The contents of erased strips on entry are ignored and fully
	// rewritten.
	Decode(s *Stripe, erased []int, ops *Ops) error
}

// An Updater is a Code that supports small writes: updating parity in place
// when a single data element changes, without re-encoding the stripe.
type Updater interface {
	Code
	// Update applies an in-place change of the data element at (col, row):
	// oldElem is the element's previous contents, the stripe already holds
	// the new contents, and the parity strips are patched to match.
	// It returns the number of parity elements that were modified.
	Update(s *Stripe, col, row int, oldElem []byte, ops *Ops) (int, error)
}

// An ElemwiseEncoder is a Code whose Encode addresses the stripe
// exclusively through Stripe.Elem — never through whole strips — and can
// therefore encode an ElemRange view: the element byte-ranges of one
// stripe are independent, so a large stripe splits across workers
// (pipeline.EncodeSharded). Strip-granular codes (rs, crs) do not
// implement it and politely fall back to a single-threaded encode.
type ElemwiseEncoder interface {
	Code
	// ElemwiseEncode is a marker with no behavior; implementing it
	// asserts the element-granularity contract above.
	ElemwiseEncode()
}

// CleanColumn is returned by ColumnCorrector.CorrectColumn when no
// corruption is present.
const CleanColumn = -1

// A ColumnCorrector is a Code that can localize and repair silent
// single-strip corruption in a full stripe (no erasures) — the paper's
// single-column error correction. Layers that scrub or heal consult this
// capability at runtime: codes that lack it fall back to detect-only
// scrubbing and straight erasure decoding.
type ColumnCorrector interface {
	Code
	// CorrectColumn scans s for a single silently corrupted strip and
	// repairs it in place, returning the index of the repaired strip, or
	// CleanColumn if the parities verify. Corruption that is not confined
	// to one column yields an error and leaves the stripe as it was.
	CorrectColumn(s *Stripe, ops *Ops) (int, error)
}

// Stripe is one stripe of an array: K data strips and M parity strips,
// each W elements of ElemSize bytes. M is implicit: len(Strips) - K.
type Stripe struct {
	K        int
	W        int
	ElemSize int
	Strips   [][]byte // len K+M; each W*ElemSize bytes
	// Stride is the byte distance between consecutive elements of a
	// strip; zero means tightly packed (ElemSize). Only ElemRange views
	// set it: a view addresses a sub-range of every element of its parent
	// stripe, so its elements are Stride apart but ElemSize long. Views
	// are valid wherever the stripe is accessed element-wise (Elem);
	// whole-strip operations (Clone, EqualData, direct Strips access)
	// assume packed strips and must not be used on views.
	Stride int
}

// stride returns the element-to-element distance in bytes.
func (s *Stripe) stride() int {
	if s.Stride != 0 {
		return s.Stride
	}
	return s.ElemSize
}

// ElemRange returns a view of s covering bytes [lo, hi) of every element.
// The view aliases s (no data is copied) and has the same K and W with
// ElemSize = hi-lo, so codes whose Encode addresses the stripe purely
// through Elem (see ElemwiseEncoder) run on it unchanged — the basis of
// the stripe-sharded parallel encode, which gives each worker a disjoint
// element byte-range of one large stripe.
func (s *Stripe) ElemRange(lo, hi int) *Stripe {
	if lo < 0 || hi > s.ElemSize || lo >= hi {
		panic(fmt.Sprintf("core: bad element range [%d,%d) of %d", lo, hi, s.ElemSize))
	}
	st := s.stride()
	v := &Stripe{K: s.K, W: s.W, ElemSize: hi - lo, Stride: st,
		Strips: make([][]byte, len(s.Strips))}
	for i, strip := range s.Strips {
		v.Strips[i] = strip[lo : (s.W-1)*st+hi]
	}
	return v
}

// NewStripe allocates a zeroed two-parity (RAID-6) stripe — shorthand for
// NewStripeM(k, 2, w, elemSize), kept because the paper's codes all have
// M = 2.
func NewStripe(k, w, elemSize int) *Stripe {
	return NewStripeM(k, 2, w, elemSize)
}

// NewStripeM allocates a zeroed stripe with k data strips and m parity
// strips. The strips are carved out of one contiguous allocation so that
// encode/decode sweeps are cache friendly.
func NewStripeM(k, m, w, elemSize int) *Stripe {
	if k < 1 || m < 1 || w < 1 || elemSize < 1 {
		panic(fmt.Sprintf("core: bad stripe shape k=%d m=%d w=%d elemSize=%d", k, m, w, elemSize))
	}
	n := k + m
	backing := make([]byte, n*w*elemSize)
	s := &Stripe{K: k, W: w, ElemSize: elemSize, Strips: make([][]byte, n)}
	for i := range s.Strips {
		s.Strips[i], backing = backing[:w*elemSize:w*elemSize], backing[w*elemSize:]
	}
	return s
}

// NewStripeFor allocates a zeroed stripe matching code's K, M, and W.
func NewStripeFor(code Code, elemSize int) *Stripe {
	return NewStripeM(code.K(), code.M(), code.W(), elemSize)
}

// Elem returns the element at (col, row) as a byte slice aliasing the strip.
func (s *Stripe) Elem(col, row int) []byte {
	st := s.Stride
	if st == 0 {
		st = s.ElemSize
	}
	off := row * st
	return s.Strips[col][off : off+s.ElemSize : off+s.ElemSize]
}

// NumStrips returns K+M.
func (s *Stripe) NumStrips() int { return len(s.Strips) }

// M returns the number of parity strips.
func (s *Stripe) M() int { return len(s.Strips) - s.K }

// DataSize returns the number of data bytes the stripe carries.
func (s *Stripe) DataSize() int { return s.K * s.W * s.ElemSize }

// Clone returns a deep copy of the stripe.
func (s *Stripe) Clone() *Stripe {
	c := NewStripeM(s.K, s.M(), s.W, s.ElemSize)
	for i, strip := range s.Strips {
		copy(c.Strips[i], strip)
	}
	return c
}

// ZeroStrip clears strip col in place.
func (s *Stripe) ZeroStrip(col int) {
	strip := s.Strips[col]
	for i := range strip {
		strip[i] = 0
	}
}

// FillRandom fills the data strips with pseudo-random bytes from rng.
func (s *Stripe) FillRandom(rng *rand.Rand) {
	for col := 0; col < s.K; col++ {
		rng.Read(s.Strips[col])
	}
}

// EqualData reports whether the data strips of s and o hold identical bytes.
func (s *Stripe) EqualData(o *Stripe) bool {
	if s.K != o.K || s.W != o.W || s.ElemSize != o.ElemSize {
		return false
	}
	for col := 0; col < s.K; col++ {
		if string(s.Strips[col]) != string(o.Strips[col]) {
			return false
		}
	}
	return true
}

// Equal reports whether all strips (data and parity) of s and o match.
func (s *Stripe) Equal(o *Stripe) bool {
	if !s.EqualData(o) || len(s.Strips) != len(o.Strips) {
		return false
	}
	for col := s.K; col < len(s.Strips); col++ {
		if string(s.Strips[col]) != string(o.Strips[col]) {
			return false
		}
	}
	return true
}

// CheckShape validates that the stripe matches a code's K, M, and W.
func (s *Stripe) CheckShape(k, m, w int) error {
	if s.K != k || s.W != w || len(s.Strips) != k+m {
		return fmt.Errorf("%w: stripe is %dx%d+%d, code wants %dx%d+%d",
			ErrShape, s.K, s.W, len(s.Strips)-s.K, k, w, m)
	}
	return nil
}

// ErasurePairs enumerates all two-column erasure patterns over n strips,
// ordered lexicographically. It is used by the complexity and throughput
// experiments, which average over "all the possible erasure patterns".
func ErasurePairs(n int) [][2]int {
	var out [][2]int
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			out = append(out, [2]int{a, b})
		}
	}
	return out
}

// DataErasurePairs enumerates erasure patterns where both lost strips are
// data strips — the hard case that Algorithm 4 of the paper addresses.
func DataErasurePairs(k int) [][2]int {
	return ErasurePairs(k)
}

// ErasureSubsets enumerates every non-empty erasure pattern of size at
// most maxSize over n strips, in lexicographic order with smaller
// patterns first. For maxSize = 2 it yields the singles followed by
// ErasurePairs(n); for an m-parity code, ErasureSubsets(k+m, m) is the
// complete set of patterns the code must survive.
func ErasureSubsets(n, maxSize int) [][]int {
	if maxSize > n {
		maxSize = n
	}
	var out [][]int
	for size := 1; size <= maxSize; size++ {
		idx := make([]int, size)
		for i := range idx {
			idx[i] = i
		}
		for {
			out = append(out, append([]int(nil), idx...))
			// Advance the combination: find the rightmost index that can
			// still move right, bump it, and reset everything after it.
			i := size - 1
			for i >= 0 && idx[i] == n-size+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < size; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
	}
	return out
}
