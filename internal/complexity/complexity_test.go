package complexity

import (
	"strings"
	"testing"
)

func seriesByName(f Figure, name string) Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return Series{}
}

func TestFigure5Shape(t *testing.T) {
	ks := []int{2, 4, 6, 8, 10, 12}
	fig := EncodingFigure(ks, 0)
	opt := seriesByName(fig, SeriesLiberationOptimal)
	orig := seriesByName(fig, SeriesLiberationOriginal)
	eo := seriesByName(fig, SeriesEVENODD)
	rdpS := seriesByName(fig, SeriesRDP)
	if len(opt.Points) != len(ks) {
		t.Fatalf("optimal series has %d points", len(opt.Points))
	}
	for i, pt := range opt.Points {
		// The headline claim: the optimal encoder reaches the lower bound
		// for every k.
		if pt.Value != 1.0 {
			t.Errorf("k=%d: Liberation(optimal) encoding = %.4f, want exactly 1", pt.K, pt.Value)
		}
		// Original is strictly above optimal: 1 + 1/(2p).
		if orig.Points[i].Value <= pt.Value {
			t.Errorf("k=%d: original (%.4f) not above optimal", pt.K, orig.Points[i].Value)
		}
		if orig.Points[i].Value > 1.2 {
			t.Errorf("k=%d: original encoding %.4f implausibly high", pt.K, orig.Points[i].Value)
		}
	}
	// EVENODD is the worst encoder in this figure for k >= 4.
	for i, pt := range eo.Points {
		if pt.K >= 4 && pt.Value <= orig.Points[i].Value {
			t.Errorf("k=%d: EVENODD (%.4f) should exceed Liberation original (%.4f)",
				pt.K, pt.Value, orig.Points[i].Value)
		}
	}
	// RDP is optimal at k = p-1: k=4 (p=5), k=6 (p=7), k=10 (p=11), k=12 (p=13).
	for _, pt := range rdpS.Points {
		if pt.K == 4 || pt.K == 6 || pt.K == 10 || pt.K == 12 {
			if pt.Value != 1.0 {
				t.Errorf("k=%d: RDP encoding = %.4f, want 1 (k=p-1)", pt.K, pt.Value)
			}
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	ks := []int{2, 4, 8, 12, 16, 20, 23}
	fig := EncodingFigure(ks, 31)
	opt := seriesByName(fig, SeriesLiberationOptimal)
	orig := seriesByName(fig, SeriesLiberationOriginal)
	eo := seriesByName(fig, SeriesEVENODD)
	for _, pt := range opt.Points {
		if pt.Value != 1.0 {
			t.Errorf("k=%d: optimal encoding at p=31 = %.4f, want 1", pt.K, pt.Value)
		}
	}
	// "the curves of the Liberation codes are flat": original is
	// 1 + 1/62 for every k.
	for _, pt := range orig.Points {
		if pt.Value < 1.015 || pt.Value > 1.017 {
			t.Errorf("k=%d: original encoding at p=31 = %.4f, want ~1.0161", pt.K, pt.Value)
		}
	}
	// EVENODD/RDP "increase substantially as k shrinks".
	small, _ := lookup(eo, 4)
	large, _ := lookup(eo, 23)
	if small <= large {
		t.Errorf("EVENODD at p=31: k=4 (%.4f) should exceed k=23 (%.4f)", small, large)
	}
}

func TestFigure7Shape(t *testing.T) {
	ks := []int{4, 6, 8, 10}
	fig := DecodingFigure(ks, 0)
	opt := seriesByName(fig, SeriesLiberationOptimal)
	orig := seriesByName(fig, SeriesLiberationOriginal)
	for i, pt := range opt.Points {
		// Proposed decoding is very close to the bound...
		if pt.Value > 1.07 {
			t.Errorf("k=%d: optimal decoding %.4f above 1.07", pt.K, pt.Value)
		}
		// ...and 10-20%+ below the original (paper: 15-20%).
		ratio := orig.Points[i].Value / pt.Value
		if ratio < 1.05 {
			t.Errorf("k=%d: original/optimal decode ratio %.3f < 1.05 (orig %.4f opt %.4f)",
				pt.K, ratio, orig.Points[i].Value, pt.Value)
		}
	}
	// Original sits in the paper's 1.10-1.20 band (roughly) for larger k.
	for _, pt := range orig.Points {
		if pt.K >= 6 && (pt.Value < 1.05 || pt.Value > 1.30) {
			t.Errorf("k=%d: original decoding %.4f outside [1.05, 1.30]", pt.K, pt.Value)
		}
	}
}

func TestTableI(t *testing.T) {
	rows := TableI(10, 11)
	if len(rows) != 4 {
		t.Fatalf("TableI has %d rows", len(rows))
	}
	byName := map[string]TableRow{}
	for _, r := range rows {
		byName[r.Code] = r
		if r.StorageOverhead != 2 {
			t.Errorf("%s: storage overhead %d, want 2 (MDS)", r.Code, r.StorageOverhead)
		}
	}
	// Update complexity: Liberation ~2, EVENODD/RDP ~3 (Table I).
	lib := byName["Liberation(optimal)"].UpdateComplexity
	if lib < 2.0 || lib > 2.2 {
		t.Errorf("Liberation update complexity %.3f, want ~2", lib)
	}
	for _, name := range []string{"EVENODD", "RDP"} {
		u := byName[name].UpdateComplexity
		if u < 2.5 || u > 3.5 {
			t.Errorf("%s update complexity %.3f, want ~3", name, u)
		}
	}
	// Optimal encoding reaches the bound; EVENODD does not.
	if byName["Liberation(optimal)"].EncodingComplexity != 1.0 {
		t.Error("Liberation(optimal) encoding complexity must be exactly 1")
	}
	if byName["EVENODD"].EncodingComplexity <= 1.0 {
		t.Error("EVENODD encoding complexity must exceed 1")
	}
	out := RenderTableI(rows, 10, 11)
	if !strings.Contains(out, "Liberation(optimal)") || !strings.Contains(out, "Lower bound") {
		t.Error("RenderTableI output incomplete")
	}
}

func TestUpdateFigure(t *testing.T) {
	fig := UpdateFigure([]int{4, 8, 12}, 0)
	lib := seriesByName(fig, SeriesLiberationOptimal)
	eo := seriesByName(fig, SeriesEVENODD)
	for i, pt := range lib.Points {
		if pt.Value >= eo.Points[i].Value {
			t.Errorf("k=%d: Liberation update (%.3f) should beat EVENODD (%.3f)",
				pt.K, pt.Value, eo.Points[i].Value)
		}
	}
}

func TestRender(t *testing.T) {
	fig := EncodingFigure([]int{2, 3}, 0)
	out := fig.Render()
	for _, want := range []string{"Figure 5", "EVENODD", "RDP", "Liberation(optimal)", "1.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
}

func TestCSV(t *testing.T) {
	fig := EncodingFigure([]int{2, 3}, 0)
	csv := fig.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "k,EVENODD,RDP,") {
		t.Errorf("CSV header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "2,") {
		t.Errorf("CSV row %q", lines[1])
	}
}

func TestFigure8Shape(t *testing.T) {
	// p fixed at 13 keeps the inversion sweep quick while preserving the
	// figure's structure: EVENODD/RDP degrade as k shrinks, the original
	// stays ~10-15% over the bound, the optimal within a few percent.
	ks := []int{3, 6, 9, 12}
	fig := DecodingFigure(ks, 13)
	eo := seriesByName(fig, SeriesEVENODD)
	orig := seriesByName(fig, SeriesLiberationOriginal)
	opt := seriesByName(fig, SeriesLiberationOptimal)
	small, _ := lookup(eo, 3)
	large, _ := lookup(eo, 12)
	if small <= large {
		t.Errorf("EVENODD at p=13: k=3 (%.4f) should exceed k=12 (%.4f)", small, large)
	}
	for i, pt := range opt.Points {
		if pt.Value > 1.06 {
			t.Errorf("k=%d: optimal decode at p=13 = %.4f, want <= 1.06", pt.K, pt.Value)
		}
		if orig.Points[i].Value <= pt.Value {
			t.Errorf("k=%d: original (%.4f) not above optimal (%.4f)",
				pt.K, orig.Points[i].Value, pt.Value)
		}
	}
}
