package complexity

import (
	"fmt"
	"sort"
	"strings"
)

// Render formats the figure as an aligned text table, one row per k and
// one column per series — the same data the paper plots.
func (f Figure) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&sb, "%s\n", f.YLabel)

	ks := map[int]bool{}
	for _, s := range f.Series {
		for _, pt := range s.Points {
			ks[pt.K] = true
		}
	}
	sorted := make([]int, 0, len(ks))
	for k := range ks {
		sorted = append(sorted, k)
	}
	sort.Ints(sorted)

	fmt.Fprintf(&sb, "%4s", "k")
	for _, s := range f.Series {
		fmt.Fprintf(&sb, " %22s", s.Name)
	}
	sb.WriteByte('\n')
	for _, k := range sorted {
		fmt.Fprintf(&sb, "%4d", k)
		for _, s := range f.Series {
			v, ok := lookup(s, k)
			if !ok {
				fmt.Fprintf(&sb, " %22s", "-")
			} else {
				fmt.Fprintf(&sb, " %22.4f", v)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func lookup(s Series, k int) (float64, bool) {
	for _, pt := range s.Points {
		if pt.K == k {
			return pt.Value, true
		}
	}
	return 0, false
}

// RenderTableI formats the Table I reproduction.
func RenderTableI(rows []TableRow, k, p int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table I: measured characteristics at k=%d, p=%d\n", k, p)
	fmt.Fprintf(&sb, "%-22s %-5s %-10s %-8s %-10s %-10s %-8s\n",
		"Code", "w", "k limit", "storage", "enc(norm)", "dec(norm)", "update")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %-5s %-10s %-8d %-10.4f %-10.4f %-8.4f\n",
			r.Code, r.W, r.KRestriction, r.StorageOverhead,
			r.EncodingComplexity, r.DecodingComplexity, r.UpdateComplexity)
	}
	fmt.Fprintf(&sb, "%-22s %-5s %-10s %-8d %-10.4f %-10.4f %-8.4f\n",
		"Lower bound", "-", "-", 2, 1.0, 1.0, 2.0)
	return sb.String()
}
