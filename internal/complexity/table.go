package complexity

import (
	"repro/internal/bitmatrix"
	"repro/internal/codes"
	"repro/internal/core"
	"repro/internal/evenodd"
	"repro/internal/rdp"
)

// TableRow is one code's measured characteristics for Table I.
type TableRow struct {
	Code               string
	W                  string // column height as a function of p
	KRestriction       string
	StorageOverhead    int     // redundant strips
	EncodingComplexity float64 // normalized, measured at the given k and p
	DecodingComplexity float64 // normalized, averaged over all patterns
	UpdateComplexity   float64 // average parity bits touched per data bit
}

// TableI reproduces the paper's Table I at a concrete (k, p): the
// qualitative columns come from each construction, the quantitative ones
// are measured from the implementations.
func TableI(k, p int) []TableRow {
	rows := []TableRow{
		{Code: "EVENODD", W: "p-1", KRestriction: "k <= p"},
		{Code: "RDP", W: "p-1", KRestriction: "k <= p-1"},
		{Code: "Liberation(original)", W: "p", KRestriction: "k <= p"},
		{Code: "Liberation(optimal)", W: "p", KRestriction: "k <= p"},
	}
	names := []string{SeriesEVENODD, SeriesRDP, SeriesLiberationOriginal, SeriesLiberationOptimal}
	for i, name := range names {
		rows[i].StorageOverhead = 2
		cut, ok := build(name, k, p)
		if !ok {
			continue
		}
		rows[i].EncodingComplexity = normalize(float64(EncodeXORs(cut)), 2*cut.w, k)
		rows[i].DecodingComplexity = normalize(DecodeXORsAvg(cut), 2*cut.w, k)
		rows[i].UpdateComplexity = UpdateComplexity(name, k, p)
	}
	return rows
}

// UpdateComplexity returns the average number of parity bits that must be
// updated when one data bit changes — the mean column weight of the
// code's generator matrix. The theoretical lower bound for a 2-erasure
// code is 2; Liberation attains it asymptotically, EVENODD and RDP sit
// near 3 because of the S term and the P-through-Q coupling respectively.
func UpdateComplexity(series string, k, p int) float64 {
	var ones, bits int
	switch series {
	case SeriesEVENODD:
		c, err := evenodd.New(k, p)
		if err != nil {
			return 0
		}
		g := c.Generator()
		ones, bits = g.Ones(), g.C
	case SeriesRDP:
		c, err := rdp.New(k, p)
		if err != nil {
			return 0
		}
		g := c.Generator()
		ones, bits = g.Ones(), g.C
	case SeriesLiberationOriginal, SeriesLiberationOptimal:
		c, err := codes.New("liberation", k, p)
		if err != nil {
			return 0
		}
		g := c.(interface{ Generator() *bitmatrix.Matrix }).Generator()
		ones, bits = g.Ones(), g.C
	default:
		return 0
	}
	return float64(ones) / float64(bits)
}

// UpdateFigure compares update complexities across k for the three array
// codes (the paper states Liberation ~= 2, EVENODD and RDP ~= 3).
func UpdateFigure(ks []int, fixedP int) Figure {
	fig := Figure{
		ID:     "update",
		Title:  figTitle("Update complexity (parity bits per data bit)", fixedP),
		YLabel: "Average parity updates",
	}
	for _, name := range []string{SeriesEVENODD, SeriesRDP, SeriesLiberationOptimal} {
		series := Series{Name: name}
		for _, k := range ks {
			if k < 2 {
				continue
			}
			p := fixedP
			if p == 0 {
				if name == SeriesRDP {
					p = core.NextOddPrime(k + 1)
				} else {
					p = core.NextOddPrime(k)
				}
			}
			v := UpdateComplexity(name, k, p)
			if v == 0 {
				continue
			}
			series.Points = append(series.Points, Point{K: k, Value: v})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig
}
