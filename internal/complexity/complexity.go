// Package complexity regenerates the paper's XOR-count experiments:
// normalized encoding complexity (Figures 5 and 6), normalized decoding
// complexity averaged over all possible erasure patterns (Figures 7 and
// 8), the characteristics summary (Table I), and the update-complexity
// comparison the introduction cites. All numbers are exact operation
// counts obtained by running the real encoders/decoders in counting mode
// on 8-byte elements — nothing is estimated from formulas.
package complexity

import (
	"fmt"

	"repro/internal/bitmatrix"
	"repro/internal/codes"
	"repro/internal/core"
	"repro/internal/evenodd"
	"repro/internal/rdp"
)

// Point is one (k, value) sample of a series.
type Point struct {
	K     int
	Value float64
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a reproduced paper figure: several series over k.
type Figure struct {
	ID     string
	Title  string
	YLabel string
	Series []Series
}

// The four codes compared in Figures 5-8, in the paper's legend order.
const (
	SeriesEVENODD            = "EVENODD"
	SeriesRDP                = "RDP"
	SeriesLiberationOriginal = "Liberation(original)"
	SeriesLiberationOptimal  = "Liberation(optimal)"
)

// codeUnderTest bundles a constructed code with its stripe shape.
type codeUnderTest struct {
	code  core.Code
	w     int
	prime int
}

// build constructs one of the four compared codes for the given k. When
// fixedP is zero, p varies with k (the paper's case (a)): the smallest
// usable prime for each code. RDP cannot reach k = p at fixed p; build
// returns ok=false where a configuration is undefined.
func build(series string, k, fixedP int) (codeUnderTest, bool) {
	switch series {
	case SeriesEVENODD:
		p := fixedP
		if p == 0 {
			p = core.NextOddPrime(k)
		}
		if k > p {
			return codeUnderTest{}, false
		}
		c, err := evenodd.New(k, p)
		if err != nil {
			return codeUnderTest{}, false
		}
		return codeUnderTest{c, p - 1, p}, true
	case SeriesRDP:
		p := fixedP
		if p == 0 {
			p = core.NextOddPrime(k + 1)
		}
		if k > p-1 {
			return codeUnderTest{}, false
		}
		c, err := rdp.New(k, p)
		if err != nil {
			return codeUnderTest{}, false
		}
		return codeUnderTest{c, p - 1, p}, true
	case SeriesLiberationOriginal:
		p := fixedP
		if p == 0 {
			p = core.NextOddPrime(k)
		}
		if k > p {
			return codeUnderTest{}, false
		}
		c, err := codes.New("liberation-original", k, p)
		if err != nil {
			return codeUnderTest{}, false
		}
		c.(*bitmatrix.Code).CacheDecodeSchedules = true
		return codeUnderTest{c, p, p}, true
	case SeriesLiberationOptimal:
		p := fixedP
		if p == 0 {
			p = core.NextOddPrime(k)
		}
		if k > p {
			return codeUnderTest{}, false
		}
		c, err := codes.New("liberation", k, p)
		if err != nil {
			return codeUnderTest{}, false
		}
		return codeUnderTest{c, p, p}, true
	}
	panic("complexity: unknown series " + series)
}

// EncodeXORs counts the element XORs of one stripe encoding.
func EncodeXORs(cut codeUnderTest) int {
	s := core.NewStripeFor(cut.code, 8)
	var ops core.Ops
	if err := cut.code.Encode(s, &ops); err != nil {
		panic(err)
	}
	return int(ops.XORs)
}

// DecodeXORsAvg counts the element XORs of decoding, averaged over all the
// possible erasure patterns (every pair of the k+m strips; m = 2 for the
// paper's codes), exactly as the paper's Section IV-A describes.
func DecodeXORsAvg(cut codeUnderTest) float64 {
	k := cut.code.K()
	s := core.NewStripeFor(cut.code, 8)
	if err := cut.code.Encode(s, nil); err != nil {
		panic(err)
	}
	total, cnt := 0, 0
	for _, pat := range core.ErasurePairs(k + cut.code.M()) {
		// Schedule-based codes expose exact costs without element work.
		if bc, ok := cut.code.(*bitmatrix.Code); ok {
			sch, err := bc.DecodeSchedule(pat[:])
			if err != nil {
				panic(err)
			}
			total += sch.XORCount()
			cnt++
			continue
		}
		work := s.Clone()
		var ops core.Ops
		if err := cut.code.Decode(work, pat[:], &ops); err != nil {
			panic(err)
		}
		total += int(ops.XORs)
		cnt++
	}
	return float64(total) / float64(cnt)
}

// normalize converts a total XOR count into the paper's normalized
// complexity: XORs per produced bit, divided by the k-1 lower bound.
func normalize(xors float64, bits, k int) float64 {
	return xors / float64(bits) / float64(k-1)
}

// EncodingFigure reproduces Figure 5 (fixedP == 0, p varying with k) or
// Figure 6 (fixedP == 31 in the paper).
func EncodingFigure(ks []int, fixedP int) Figure {
	fig := Figure{
		ID:     figID("5", "6", fixedP),
		Title:  figTitle("Normalized encoding complexities", fixedP),
		YLabel: "Encoding complexity normalized to the optimal",
	}
	for _, name := range []string{SeriesEVENODD, SeriesRDP, SeriesLiberationOriginal, SeriesLiberationOptimal} {
		series := Series{Name: name}
		for _, k := range ks {
			if k < 2 {
				continue
			}
			cut, ok := build(name, k, fixedP)
			if !ok {
				continue
			}
			xors := EncodeXORs(cut)
			series.Points = append(series.Points,
				Point{K: k, Value: normalize(float64(xors), cut.code.M()*cut.w, k)})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig
}

// DecodingFigure reproduces Figure 7 (fixedP == 0) or Figure 8 (p = 31).
func DecodingFigure(ks []int, fixedP int) Figure {
	fig := Figure{
		ID:     figID("7", "8", fixedP),
		Title:  figTitle("Normalized decoding complexities", fixedP),
		YLabel: "Decoding complexity normalized to the optimal",
	}
	for _, name := range []string{SeriesEVENODD, SeriesRDP, SeriesLiberationOriginal, SeriesLiberationOptimal} {
		series := Series{Name: name}
		for _, k := range ks {
			if k < 2 {
				continue
			}
			cut, ok := build(name, k, fixedP)
			if !ok {
				continue
			}
			avg := DecodeXORsAvg(cut)
			series.Points = append(series.Points,
				Point{K: k, Value: normalize(avg, cut.code.M()*cut.w, k)})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig
}

func figID(varying, fixed string, fixedP int) string {
	if fixedP == 0 {
		return varying
	}
	return fixed
}

func figTitle(base string, fixedP int) string {
	if fixedP == 0 {
		return base + " (p varying with k)"
	}
	return fmt.Sprintf("%s (p = %d)", base, fixedP)
}
