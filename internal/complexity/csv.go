package complexity

import (
	"fmt"
	"sort"
	"strings"
)

// CSV renders the figure as comma-separated values with a header row —
// one line per k, one column per series — ready for external plotting.
func (f Figure) CSV() string {
	var sb strings.Builder
	sb.WriteString("k")
	for _, s := range f.Series {
		sb.WriteByte(',')
		sb.WriteString(strings.ReplaceAll(s.Name, ",", ";"))
	}
	sb.WriteByte('\n')
	ks := map[int]bool{}
	for _, s := range f.Series {
		for _, pt := range s.Points {
			ks[pt.K] = true
		}
	}
	sorted := make([]int, 0, len(ks))
	for k := range ks {
		sorted = append(sorted, k)
	}
	sort.Ints(sorted)
	for _, k := range sorted {
		fmt.Fprintf(&sb, "%d", k)
		for _, s := range f.Series {
			if v, ok := lookup(s, k); ok {
				fmt.Fprintf(&sb, ",%.6f", v)
			} else {
				sb.WriteByte(',')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
