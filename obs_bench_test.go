// Observability artifact hook for the bench harness: setting
// BENCH_OBS_JSON=<path> makes the test binary emit the metric snapshot
// of a deterministic instrumented workload after the run (see
// `make bench-obs`), so XOR-per-bit rates and span accounting can be
// diffed across commits alongside the throughput numbers.
package repro_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/benchutil"
)

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_OBS_JSON"); path != "" && code == 0 {
		rep, err := benchutil.RunObservedWorkload(8, 11, 1024, 64)
		if err == nil {
			err = benchutil.WriteObsJSON(path, rep)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "BENCH_OBS_JSON:", err)
			code = 1
		} else {
			fmt.Fprintln(os.Stderr, "wrote observability snapshot to", path)
		}
	}
	os.Exit(code)
}

// TestObservedWorkloadDeterministic pins the artifact's op accounting:
// the encode span must show exactly 2p(k-1) XORs per stripe (k-1 per
// parity element), whatever machine produced it.
func TestObservedWorkloadDeterministic(t *testing.T) {
	const k, p, stripes = 5, 5, 8
	rep, err := benchutil.RunObservedWorkload(k, p, 64, stripes)
	if err != nil {
		t.Fatal(err)
	}
	enc, ok := rep.Snapshot.Spans["liberation.encode"]
	if !ok {
		t.Fatal("no encode span in report")
	}
	if want := uint64(stripes * 2 * p * (k - 1)); enc.XORs != want {
		t.Errorf("encode XORs = %d, want %d", enc.XORs, want)
	}
	if enc.XORsPerUnit != float64(k-1) {
		t.Errorf("encode XORs/unit = %v, want %d", enc.XORsPerUnit, k-1)
	}
	if _, ok := rep.Snapshot.Spans["pipeline.decode"]; !ok {
		t.Error("no pipeline.decode span in report")
	}
}
