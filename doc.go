// Package repro is a from-scratch Go reproduction of "Optimal Encoding
// and Decoding Algorithms for the RAID-6 Liberation Codes" (Huang, Jiang,
// Shen, Che, Xiao, Li — IEEE IPDPS 2020).
//
// The implementation lives under internal/: the Liberation codes with
// both the original bit-matrix-scheduled algorithms and the paper's
// optimal Algorithms 1-4 (internal/liberation), the EVENODD and RDP
// baselines, a Jerasure-equivalent bit-matrix substrate, Reed-Solomon
// baselines (the classic P+Q pair plus a generalized m-parity family
// whose rs3 instance survives any triple fault), an array simulator,
// and the experiment drivers that
// regenerate every table and figure of the paper's evaluation. The
// whole stack is parameterized over the parity count m — stripes carry
// k data strips plus m parities, and every layer (codes, shard engine,
// simulator, CLI) handles up to m concurrent losses. See
// README.md, DESIGN.md and EXPERIMENTS.md, the runnable examples under
// examples/, and the benchmarks in bench_test.go.
package repro
