// Package repro is a from-scratch Go reproduction of "Optimal Encoding
// and Decoding Algorithms for the RAID-6 Liberation Codes" (Huang, Jiang,
// Shen, Che, Xiao, Li — IEEE IPDPS 2020).
//
// The implementation lives under internal/: the Liberation codes with
// both the original bit-matrix-scheduled algorithms and the paper's
// optimal Algorithms 1-4 (internal/liberation), the EVENODD and RDP
// baselines, a Jerasure-equivalent bit-matrix substrate, a Reed-Solomon
// P+Q baseline, a RAID-6 array simulator, and the experiment drivers that
// regenerate every table and figure of the paper's evaluation. See
// README.md, DESIGN.md and EXPERIMENTS.md, the runnable examples under
// examples/, and the benchmarks in bench_test.go.
package repro
